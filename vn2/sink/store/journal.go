// Package store is the sink's durability layer: the report journal (a thin
// policy wrapper over internal/wal adding retries, typed swap records and
// error accounting), the snapshot file format, the applied-LSN watermark
// tracker, and the atomic-file primitives the lifecycle uses for persisted
// model generations. Nothing here knows about HTTP, the event bus, or the
// monitor — callers hand in bytes and records and get LSNs back.
package store

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/wsn-tools/vn2/internal/retry"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/internal/wal"
)

// RecordKind aliases the WAL's frame kind so layers above store never
// import internal/wal directly.
type RecordKind = wal.Kind

// Journal frame kinds.
const (
	KindRaw     = wal.KindRaw
	KindSwap    = wal.KindSwap
	KindBatch   = wal.KindBatch
	KindHandoff = wal.KindHandoff
)

// Journal wraps the write-ahead log with the sink's append/sync policy:
// decorrelated-jitter retries for transient report-path failures, no
// retries on the swap path (the caller holds the swap gate and must fail
// fast), and a single error counter feeding the wal_errors metric.
type Journal struct {
	w     *wal.WAL
	sleep func(time.Duration) // retry sleeper; nil = time.Sleep (tests inject)
	errs  atomic.Uint64
}

// OpenJournal opens (or creates) the WAL directory. sleep is the retry
// sleeper; nil means time.Sleep.
func OpenJournal(dir string, sleep func(time.Duration)) (*Journal, error) {
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	return &Journal{w: w, sleep: sleep}, nil
}

// AppendRecord journals one report, retrying transient failures (a segment
// rotation hiding behind Append gets the same retries) with
// decorrelated-jitter backoff. The record is durable only after a later
// Sync.
func (j *Journal) AppendRecord(rec trace.Record) (uint64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	var lsn uint64
	b := retry.New(10*time.Millisecond, 250*time.Millisecond, 0x77a1)
	err = retry.Do(context.Background(), b, 3, j.sleep, func() error {
		l, err := j.w.Append(payload)
		if err != nil {
			return err
		}
		lsn = l
		return nil
	})
	if err != nil {
		j.errs.Add(1)
	}
	return lsn, err
}

// AppendBatch journals one batched binary ingest frame as a single WAL
// record (the group-commit framing: a 64-report batch costs one append and
// shares one fsync, where the JSON path appends per report). The frame must
// contain only fully-materialized records — replay after a snapshot
// truncation has no delta history. Same retry policy as AppendRecord; the
// batch is durable only after a later Sync.
func (j *Journal) AppendBatch(frame []byte) (uint64, error) {
	payload := wal.Encode(wal.KindBatch, frame)
	var lsn uint64
	b := retry.New(10*time.Millisecond, 250*time.Millisecond, 0x77a3)
	err := retry.Do(context.Background(), b, 3, j.sleep, func() error {
		l, err := j.w.Append(payload)
		if err != nil {
			return err
		}
		lsn = l
		return nil
	})
	if err != nil {
		j.errs.Add(1)
	}
	return lsn, err
}

// Sync group-commits everything appended so far. One fsync covers every
// record of the request (and any a concurrent request just appended).
func (j *Journal) Sync() error {
	b := retry.New(10*time.Millisecond, 250*time.Millisecond, 0x77a2)
	err := retry.Do(context.Background(), b, 3, j.sleep, j.w.Sync)
	if err != nil {
		j.errs.Add(1)
	}
	return err
}

// AppendSwapSync journals a model-swap record and fsyncs it immediately,
// with NO retries: the caller holds the swap gate, and stalling there would
// stall every report append behind the gate. A failure is the caller's to
// surface; the swap simply does not happen.
func (j *Journal) AppendSwapSync(rec SwapRecord) (uint64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	lsn, err := j.w.Append(wal.Encode(wal.KindSwap, payload))
	if err != nil {
		j.errs.Add(1)
		return 0, fmt.Errorf("journal swap record: %w", err)
	}
	if err := j.w.Sync(); err != nil {
		j.errs.Add(1)
		return 0, fmt.Errorf("sync swap record: %w", err)
	}
	return lsn, nil
}

// Probe is a raw one-shot sync used as the degraded-mode recovery probe: a
// success means the disk came back. It does not count toward wal_errors —
// probing a known-bad journal would otherwise inflate the counter forever.
func (j *Journal) Probe() error { return j.w.Sync() }

// Replay walks every retained frame oldest-first, decoding the typed frame
// header so the callback sees the kind and the inner payload.
func (j *Journal) Replay(fn func(lsn uint64, kind RecordKind, inner []byte) error) error {
	return j.w.Replay(func(lsn uint64, payload []byte) error {
		kind, inner := wal.Decode(payload)
		return fn(lsn, kind, inner)
	})
}

// TruncateBefore drops segments wholly below lsn (snapshot-coordinated).
func (j *Journal) TruncateBefore(lsn uint64) error {
	err := j.w.TruncateBefore(lsn)
	if err != nil {
		j.errs.Add(1)
	}
	return err
}

// Errs is the total failed appends/syncs/truncations (the wal_errors
// metric).
func (j *Journal) Errs() uint64 { return j.errs.Load() }

// NextLSN returns the LSN the next append will get.
func (j *Journal) NextLSN() uint64 { return j.w.NextLSN() }

// Segments returns the retained segment count.
func (j *Journal) Segments() int { return j.w.Segments() }

// Truncations returns how many TruncateBefore calls dropped segments.
func (j *Journal) Truncations() uint64 { return j.w.Truncations() }

// Close flushes, fsyncs and closes the journal.
func (j *Journal) Close() error { return j.w.Close() }

// Abort closes without flushing — the crash-simulation hook.
func (j *Journal) Abort() error { return j.w.Abort() }
