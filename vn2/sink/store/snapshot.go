package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2/online"
)

// SnapshotVersion guards the snapshot file format. Version 2 added the
// monitor's rolling state and the WAL applied-LSN watermark; version 3 the
// serving model's generation and swap history. Version 1 files (model +
// detector + summary only) still load, they just re-warm; version 2 files
// load as generation 1 with no history.
const SnapshotVersion = 3

// Snapshot is the periodic on-disk state: the model (as its vn2.Save
// envelope, so restoring revalidates through vn2.Load), the frozen
// detector, the rolling summary for observability, and — since version 2 —
// the monitor's full rolling state plus the WAL watermark. A server
// restarted with only -snapshot resumes mid-stream; a WAL replay on top
// recovers everything accepted after the snapshot was cut.
type Snapshot struct {
	Version  int                  `json:"version"`
	SavedAt  time.Time            `json:"saved_at"`
	Model    json.RawMessage      `json:"model"`
	Detector *trace.Detector      `json:"detector"`
	Summary  online.Summary       `json:"summary"`
	Monitor  *online.MonitorState `json:"monitor,omitempty"`
	// WALApplied is the largest LSN known ingested when the snapshot was
	// cut: every record at or below it is reflected in Monitor. Captured
	// BEFORE the monitor state is exported, so the state always covers at
	// least the watermark — replaying a little extra is benign (the
	// monitor's duplicate/stale handling absorbs it), losing some is not.
	WALApplied uint64 `json:"wal_applied,omitempty"`
	// ModelVersion is the serving generation whose envelope Model holds;
	// Swaps is the lifecycle history at snapshot time. Version 3 fields.
	ModelVersion uint64      `json:"model_version,omitempty"`
	Swaps        []SwapEvent `json:"swaps,omitempty"`
}

// ReadSnapshot loads and version-checks a snapshot file. A missing file is
// a first run, not an error: the result is (nil, nil).
func ReadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First run; the file appears after the first snapshot tick.
		return nil, nil
	case err != nil:
		return nil, fmt.Errorf("read snapshot: %w", err)
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(b, snap); err != nil {
		return nil, fmt.Errorf("decode snapshot %s: %w", path, err)
	}
	if snap.Version < 1 || snap.Version > SnapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d", snap.Version)
	}
	return snap, nil
}
