package store

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes path via tmp + fsync + rename so a crash never
// leaves the path pointing at a file whose content didn't make it to disk.
// With syncDir the containing directory is fsynced too, making the rename
// itself durable — required when a WAL record is about to reference the
// file by name (lifecycle model/detector generations); the periodic
// snapshot skips it because a lost rename there just replays a little more
// WAL.
func WriteFileAtomic(path string, data []byte, syncDir bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if !syncDir {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
