package ingest

import (
	"testing"
)

// FuzzDecodeReports hammers the POST /report body decoder with arbitrary
// bytes across its three accepted shapes (bare record, bare array,
// {"reports": [...]} envelope). The invariant is decode-or-reject: never
// panic, never return success with an empty batch (an accepted empty batch
// would ACK nothing as if it were something).
func FuzzDecodeReports(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`hello`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"reports":[]}`))
	f.Add([]byte(`{"bogus":true}`))
	f.Add([]byte(`{"node":1,"epoch":1,`))
	f.Add([]byte(`{"node":1,"epoch":1}`))
	f.Add([]byte(`{"node":1,"epoch":1,"vector":[1,2,3]}`))
	f.Add([]byte(`[{"node":1,"epoch":1,"vector":[1,2,3]}]`))
	f.Add([]byte(`{"reports":[{"node":1,"epoch":1,"vector":[1,2,3]}]}`))
	f.Add([]byte(`{"reports":[{"node":1,"epoch":1,"vector":[1e308,2e308]}]}`))
	f.Add([]byte(`  [ {"node": 9, "epoch": 2, "vector": [0]} ] `))
	f.Add([]byte(`{"reports":null}`))
	f.Add([]byte(`[null]`))

	f.Fuzz(func(t *testing.T, body []byte) {
		recs, err := Decode(body)
		if err != nil {
			if len(recs) != 0 {
				t.Fatalf("error %v but %d records returned", err, len(recs))
			}
			return
		}
		if len(recs) == 0 {
			t.Fatal("success with an empty batch")
		}
	})
}
