package ingest

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/wsn-tools/vn2/internal/packet"
)

// encodeFrame builds a frame through the real client-side encoder so the
// decoder tests exercise the actual wire bytes, not hand-rolled ones.
func encodeFrame(t *testing.T, enc *packet.FrameEncoder, add func(e *packet.FrameEncoder) error) []byte {
	t.Helper()
	enc.Reset()
	if err := add(enc); err != nil {
		t.Fatalf("encode: %v", err)
	}
	frame, err := enc.Frame()
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	return append([]byte(nil), frame...)
}

func TestDecodeEnvelopeEmptyArray(t *testing.T) {
	// {"reports": []} must be diagnosed as an empty batch, not fall through
	// to bare-record parsing and the misleading "report without a vector".
	for _, body := range []string{`{"reports": []}`, `{"reports":[]}`, ` { "reports" : [ ] } `} {
		_, err := Decode([]byte(body))
		if err == nil {
			t.Fatalf("Decode(%q): expected error", body)
		}
		if !strings.Contains(err.Error(), "empty report array") {
			t.Fatalf("Decode(%q): got %q, want empty-report-array", body, err)
		}
	}
	// {"reports": null} names the key with no reports — same diagnosis.
	if _, err := Decode([]byte(`{"reports": null}`)); err == nil ||
		!strings.Contains(err.Error(), "empty report array") {
		t.Fatalf("Decode null reports: got %v, want empty-report-array", err)
	}
	// And a populated envelope still decodes.
	recs, err := Decode([]byte(`{"reports":[{"node":3,"epoch":7,"vector":[1,2]}]}`))
	if err != nil || len(recs) != 1 || recs[0].Node != 3 {
		t.Fatalf("envelope decode: recs=%v err=%v", recs, err)
	}
}

func TestBinaryDecoderFullRoundTrip(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	vecs := map[packet.NodeID][]float64{
		1: {1.5, -0.25, math.Inf(1), 0},
		2: {0, 0, 0, math.Copysign(0, -1)},
	}
	frame := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		for node, v := range vecs {
			if err := e.AddFull(node, 10, v); err != nil {
				return err
			}
		}
		return nil
	})
	recs, err := dec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	for _, rec := range recs {
		want := vecs[rec.Node]
		if rec.Epoch != 10 || len(rec.Vector) != len(want) {
			t.Fatalf("record shape: %+v", rec)
		}
		for i := range want {
			if math.Float64bits(rec.Vector[i]) != math.Float64bits(want[i]) {
				t.Fatalf("node %d [%d]: %v != %v", rec.Node, i, rec.Vector[i], want[i])
			}
		}
	}
	if dec.Nodes() != 2 {
		t.Fatalf("cache holds %d nodes, want 2", dec.Nodes())
	}
}

func TestBinaryDecoderDeltaAcrossFrames(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	base := []float64{100, 200, 300, 400, 500}

	frame1 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		return e.Add(7, 1, base)
	})
	if _, err := dec.Decode(frame1); err != nil {
		t.Fatal(err)
	}

	// Same vector with two slots bumped: the encoder emits a delta against
	// epoch 1, the decoder reconstructs from its cache.
	next := append([]float64(nil), base...)
	next[0] += 1
	next[4] = math.NaN()
	frame2 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		return e.Add(7, 2, next)
	})
	before := dec.Deltas()
	recs, err := dec.Decode(frame2)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Deltas() != before+1 {
		t.Fatalf("expected a delta record on the wire (deltas %d -> %d)", before, dec.Deltas())
	}
	for i := range next {
		if math.Float64bits(recs[0].Vector[i]) != math.Float64bits(next[i]) {
			t.Fatalf("slot %d: %v != %v", i, recs[0].Vector[i], next[i])
		}
	}
}

func TestBinaryDecoderIntraFrameDelta(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	v1 := []float64{1, 2, 3}
	v2 := []float64{1, 2, 4}
	v3 := []float64{1, 5, 4}
	frame := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		if err := e.Add(9, 1, v1); err != nil {
			return err
		}
		if err := e.Add(9, 2, v2); err != nil {
			return err
		}
		return e.Add(9, 3, v3)
	})
	recs, err := dec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, want := range [][]float64{v1, v2, v3} {
		for j := range want {
			if recs[i].Vector[j] != want[j] {
				t.Fatalf("rec %d slot %d: %v != %v", i, j, recs[i].Vector[j], want[j])
			}
		}
	}
}

func TestBinaryDecoderRejectsColdDelta(t *testing.T) {
	// A delta for a node the sink has never seen must reject the frame and
	// leave the cache untouched (all-or-nothing).
	enc := packet.NewFrameEncoder()
	warm := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()

	// Prime only the CLIENT encoder so it willingly emits a delta.
	encodeFrame(t, warm, func(e *packet.FrameEncoder) error { return nil })
	base := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	encodeFrame(t, enc, func(e *packet.FrameEncoder) error { return e.Add(5, 1, base) })
	next := append([]float64(nil), base...)
	next[2] += 1
	deltaFrame := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		if err := e.AddFull(6, 1, base); err != nil { // a valid full rides along
			return err
		}
		return e.Add(5, 2, next)
	})

	if _, err := dec.Decode(deltaFrame); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("got %v, want ErrDeltaBase", err)
	}
	// All-or-nothing: node 6's full record must NOT have been committed.
	if dec.Nodes() != 0 {
		t.Fatalf("cache advanced on a rejected frame: %d nodes", dec.Nodes())
	}
}

func TestBinaryDecoderRejectsStaleBase(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	base := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	f1 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error { return e.Add(5, 1, base) })
	if _, err := dec.Decode(f1); err != nil {
		t.Fatal(err)
	}
	// Advance the sink past the client: the sink now caches epoch 3, but
	// the client still deltas against epoch 1.
	bumped := append([]float64(nil), base...)
	bumped[0] = 9
	f2 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error { return e.AddFull(5, 3, bumped) })
	if _, err := dec.Decode(f2); err != nil {
		t.Fatal(err)
	}
	enc.Forget()
	encodeFrame(t, enc, func(e *packet.FrameEncoder) error { return e.Add(5, 1, base) })
	next := append([]float64(nil), base...)
	next[1] += 1
	f3 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error { return e.Add(5, 2, next) })
	if _, err := dec.Decode(f3); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("got %v, want ErrDeltaBase for stale base epoch", err)
	}
}

func TestBinaryDecoderEmptyFrame(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	frame := encodeFrame(t, enc, func(e *packet.FrameEncoder) error { return nil })
	if _, err := dec.Decode(frame); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("got %v, want ErrEmptyFrame", err)
	}
}

// TestBinaryDecoderRecordsOutliveDecode pins the ownership contract: records
// from one Decode stay intact after the next Decode reuses the arenas.
func TestBinaryDecoderRecordsOutliveDecode(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	f1 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		return e.Add(1, 1, []float64{10, 20, 30})
	})
	recs1, err := dec.Decode(f1)
	if err != nil {
		t.Fatal(err)
	}
	f2 := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		return e.Add(2, 1, []float64{-1, -2, -3})
	})
	if _, err := dec.Decode(f2); err != nil {
		t.Fatal(err)
	}
	if recs1[0].Vector[0] != 10 || recs1[0].Vector[2] != 30 {
		t.Fatalf("first batch clobbered by second decode: %v", recs1[0].Vector)
	}
}

// TestBinaryDecoderAllocBudget pins the hot-path promise: decoding a
// 64-report batch costs well under one allocation per report once the
// caches are warm (one flat float64 backing + one record slice per batch).
func TestBinaryDecoderAllocBudget(t *testing.T) {
	enc := packet.NewFrameEncoder()
	dec := NewBinaryDecoder()
	const reports = 64
	vec := make([]float64, 12)
	for i := range vec {
		vec[i] = float64(i) * 3.5
	}
	// A full frame at epoch 10 and a delta frame at epoch 11 whose bases are
	// the full frame's vectors: the pair cycles cleanly (each full overwrite
	// re-arms the next round of deltas).
	fullFrame := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		for n := 0; n < reports; n++ {
			if err := e.AddFull(packet.NodeID(n+1), 10, vec); err != nil {
				return err
			}
		}
		return nil
	})
	next := append([]float64(nil), vec...)
	next[3] += 42
	deltaFrame := encodeFrame(t, enc, func(e *packet.FrameEncoder) error {
		for n := 0; n < reports; n++ {
			if err := e.Add(packet.NodeID(n+1), 11, next); err != nil {
				return err
			}
		}
		return nil
	})
	// Warm the decoder so its cache maps and slices stop growing.
	for i := 0; i < 3; i++ {
		if _, err := dec.Decode(fullFrame); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(deltaFrame); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := dec.Decode(fullFrame); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(deltaFrame); err != nil {
			t.Fatal(err)
		}
	})
	allocs /= 2 // two batches per run
	t.Logf("allocs per 64-report batch: %.1f", allocs)
	if allocs > float64(reports) {
		t.Fatalf("decode allocates %.1f per %d-report batch (> 1 alloc/report)", allocs, reports)
	}
}
