// Package ingest is the sink's decode layer: it turns a POST /report body
// into validated trace records, and defines the queue item that carries an
// accepted record (or a model-swap barrier) from the HTTP edge to the
// single ingest loop. It deliberately knows nothing about HTTP status
// codes, the WAL, or the monitor — those live in sink/api, sink/store and
// the sink root respectively.
package ingest

import (
	"bytes"
	"encoding/json"
	"errors"

	"github.com/wsn-tools/vn2/internal/trace"
)

// Decode parses a POST /report body: a bare trace.Record, a bare array of
// records, or the {"reports": [...]} envelope. Split out so the fuzz
// target can hit it directly.
func Decode(raw []byte) ([]trace.Record, error) {
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 {
		return nil, errors.New("empty body")
	}
	if raw[0] == '[' {
		var recs []trace.Record
		if err := json.Unmarshal(raw, &recs); err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, errors.New("empty report array")
		}
		return recs, nil
	}
	// Probe for the envelope by key presence, not content: {"reports": []}
	// must be reported as an empty batch (like the bare-array path), not
	// fall through to bare-record parsing and the misleading "report
	// without a vector".
	var probe struct {
		Reports json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(raw, &probe); err == nil && probe.Reports != nil {
		var recs []trace.Record
		if err := json.Unmarshal(probe.Reports, &recs); err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, errors.New("empty report array")
		}
		return recs, nil
	}
	// Not the batch envelope: treat the body as one bare record.
	var rec trace.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, err
	}
	if rec.Vector == nil {
		return nil, errors.New("report without a vector")
	}
	return []trace.Record{rec}, nil
}

// Envelope is the batched POST /report body; a bare trace.Record (or bare
// array of records) is also accepted.
type Envelope struct {
	Reports []trace.Record `json:"reports"`
}

// Item is one entry on the ingest queue. Ordinary reports carry Rec (and
// the LSN their WAL append produced, 0 when journaling is off). A non-nil
// Apply marks a barrier: the ingest loop runs Apply instead of ingesting,
// which is how a model hot-swap lands at an exact point in the report
// order. Apply is an opaque closure so this package stays ignorant of the
// lifecycle layer.
type Item struct {
	LSN   uint64
	Rec   trace.Record
	Apply func()
}
