package ingest

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
)

// Binary ingest errors.
var (
	// ErrEmptyFrame reports a structurally valid frame with zero records —
	// accepting it would ACK nothing as if it were something.
	ErrEmptyFrame = errors.New("ingest: empty binary frame")
	// ErrDeltaBase reports a delta record whose base vector this sink does
	// not hold (cold cache after a restart, or a desynced sender). The whole
	// frame is rejected; the client must retransmit with full encoding.
	ErrDeltaBase = errors.New("ingest: delta base not cached, resend full")
)

// nodeBase is one node's slot in the sink's last-vector cache.
type nodeBase struct {
	epoch uint32
	vec   []float64
}

// BinaryDecoder is the sink side of the batched binary ingest protocol: it
// parses /report/bin frames and reconstructs delta-encoded records against
// a per-node cache of the last vector received. Reconstruction is bit-exact
// because the wire carries raw float64 bits and a delta only ever rewrites
// entries of a cached vector the sender provably shares (epoch and length
// are checked; any mismatch rejects the whole frame before the cache moves).
//
// Decode is all-or-nothing: the cache commits only after every record in
// the frame has been reconstructed, so a rejected frame leaves the decoder
// exactly as it was — a torn wire or desynced sender can never half-apply
// a batch or poison later deltas.
//
// Not safe for concurrent use; the server serializes access.
type BinaryDecoder struct {
	dec     packet.FrameDecoder
	last    map[packet.NodeID]*nodeBase
	inFrame map[packet.NodeID]int // node → latest record index, current frame
	deltas  atomic.Uint64         // cumulative delta-encoded records decoded
}

// Deltas reports how many delta-encoded records this decoder has
// reconstructed (the wire-efficiency signal surfaced at /status).
func (d *BinaryDecoder) Deltas() uint64 { return d.deltas.Load() }

// NewBinaryDecoder returns a decoder with a cold cache: until a node's
// first full record arrives, deltas for it are rejected.
func NewBinaryDecoder() *BinaryDecoder {
	return &BinaryDecoder{
		last:    make(map[packet.NodeID]*nodeBase),
		inFrame: make(map[packet.NodeID]int),
	}
}

// Nodes reports how many nodes the last-vector cache holds.
func (d *BinaryDecoder) Nodes() int { return len(d.last) }

// Decode parses one binary frame into trace records. The returned records
// own their vectors (one flat backing array per call — ~1 allocation per
// batch, not per report) and stay valid after the next Decode, so they can
// sit on the ingest queue while the decoder moves on.
func (d *BinaryDecoder) Decode(raw []byte) ([]trace.Record, error) {
	wrecs, err := d.dec.Decode(raw)
	if err != nil {
		return nil, err
	}
	if len(wrecs) == 0 {
		return nil, ErrEmptyFrame
	}
	total := 0
	for i := range wrecs {
		total += wrecs[i].Len
	}
	out := make([]trace.Record, len(wrecs))
	flat := make([]float64, total)
	off := 0
	clear(d.inFrame)
	for i := range wrecs {
		wr := &wrecs[i]
		vec := flat[off : off+wr.Len : off+wr.Len]
		off += wr.Len
		switch wr.Kind {
		case packet.RecFull, packet.RecReport:
			copy(vec, wr.Values)
		case packet.RecDelta:
			// The base is the node's latest vector: the one earlier in this
			// frame if present, else the cached one from previous frames.
			var baseEpoch uint32
			var base []float64
			if j, ok := d.inFrame[wr.Node]; ok {
				baseEpoch = uint32(out[j].Epoch)
				base = out[j].Vector
			} else if nb, ok := d.last[wr.Node]; ok {
				baseEpoch = nb.epoch
				base = nb.vec
			} else {
				return nil, fmt.Errorf("%w: node %d has no cached vector", ErrDeltaBase, wr.Node)
			}
			if baseEpoch != wr.Base || len(base) != wr.Len {
				return nil, fmt.Errorf("%w: node %d base epoch %d len %d, cached epoch %d len %d",
					ErrDeltaBase, wr.Node, wr.Base, wr.Len, baseEpoch, len(base))
			}
			copy(vec, base)
			for j, ix := range wr.Idx {
				vec[ix] = wr.Diff[j]
			}
			d.deltas.Add(1)
		default:
			return nil, fmt.Errorf("%w: record kind %#x", packet.ErrBadFrame, wr.Kind)
		}
		out[i] = trace.Record{Node: wr.Node, Epoch: int(wr.Epoch), Vector: vec}
		d.inFrame[wr.Node] = i
	}
	// Every record reconstructed — commit the cache: each node's slot moves
	// to its last vector in this frame.
	for node, i := range d.inFrame {
		nb, ok := d.last[node]
		if !ok {
			nb = &nodeBase{}
			d.last[node] = nb
		}
		if len(nb.vec) != len(out[i].Vector) {
			nb.vec = make([]float64, len(out[i].Vector))
		}
		copy(nb.vec, out[i].Vector)
		nb.epoch = uint32(out[i].Epoch)
	}
	return out, nil
}
