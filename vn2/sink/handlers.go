package sink

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2/sink/api"
	"github.com/wsn-tools/vn2/vn2/sink/ingest"
)

// Handler builds the HTTP surface: the original five endpoints plus the
// visibility plane (/stream, /status, and the embedded dashboard at /).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /report", s.handleReport)
	mux.HandleFunc("POST /report/bin", s.handleReportBin)
	mux.HandleFunc("GET /diagnosis", s.handleDiagnosis)
	mux.HandleFunc("GET /epochs", s.handleEpochs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /handoff/export", s.handleHandoffExport)
	mux.HandleFunc("POST /handoff/import", s.handleHandoffImport)
	mux.HandleFunc("POST /handoff/release", s.handleHandoffRelease)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /model", s.handleModel)
	mux.Handle("GET /stream", api.Stream(s.bus, s.opts.StreamBuffer))
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.Handle("GET /{$}", api.Dashboard())
	return mux
}

// walFail flips the server into degraded mode on a persistent journal
// failure and answers the request with a 503: nothing is ACKed, the client
// owns the retry.
func (s *Server) walFail(w http.ResponseWriter, op string, err error) {
	s.enterDegraded(fmt.Sprintf("%s: %s: %v", degradedWAL, op, err))
	api.Unavailable(w, 5, "journal unavailable, report not accepted",
		map[string]any{"reason": err.Error()})
}

// handleReport journals and enqueues reports. The 202 is the durability
// contract: it is sent only after every report in the request is in the
// queue AND fsynced to the WAL (when enabled) — a kill -9 after the 202
// loses nothing. A full queue is backpressure: the request gets 503 +
// Retry-After and the client is told how many of its reports were accepted
// before the queue filled; those accepted are journaled, the dropped are
// not ACKed and must be retried.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if s.deg.Active() {
		reason, _ := s.deg.Reason()
		api.Unavailable(w, 5, "degraded: ingest shed, serving last-good diagnosis",
			map[string]any{"reason": reason})
		return
	}
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	raw, err := io.ReadAll(body)
	if err != nil && isBodyTooLarge(err) {
		s.badReqs.Add(1)
		api.Error(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", 8<<20), nil)
		return
	}
	var recs []trace.Record
	if err == nil {
		recs, err = ingest.Decode(raw)
	}
	if err != nil || len(recs) == 0 {
		s.badReqs.Add(1)
		api.Error(w, http.StatusBadRequest, "body must be a report, an array of reports, or {\"reports\": [...]}", nil)
		return
	}
	s.received.Add(uint64(len(recs)))

	// Per record: journal (when the WAL is on), then enqueue. The fsync
	// comes once at the end — records are in the queue before they are
	// durable, which is fine because only the final 202 promises
	// durability; a crash in between loses nothing the client was told
	// was safe. A record journaled but shed by a full queue is marked
	// applied immediately so it cannot stall the truncation watermark —
	// if it survives into a replay that is surplus, not loss, and the
	// monitor's duplicate/stale handling absorbs it.
	queued := 0
	shed := false
	for _, rec := range recs {
		// The read side of the swap gate: a record's WAL append and its
		// queue insertion happen with no swap record between them, so the
		// record lands on the same side of every generation boundary in
		// both orders.
		s.lc.Gate.RLock()
		var lsn uint64
		if s.jnl != nil {
			l, err := s.jnl.AppendRecord(rec)
			if err != nil {
				s.lc.Gate.RUnlock()
				if queued > 0 {
					_ = s.jnl.Sync() // best effort for what was enqueued
				}
				s.walFail(w, "append", err)
				return
			}
			lsn = l
		}
		select {
		case s.queue <- ingest.Item{LSN: lsn, Rec: rec}:
			queued++
		default:
			if s.jnl != nil {
				s.applied.Mark(lsn)
			}
			shed = true
		}
		s.lc.Gate.RUnlock()
		if shed {
			break
		}
	}
	if s.jnl != nil {
		if err := s.jnl.Sync(); err != nil {
			s.walFail(w, "sync", err)
			return
		}
	}
	if shed {
		s.accepted.Add(uint64(queued))
		s.rejected.Add(uint64(len(recs) - queued))
		api.Unavailable(w, 1, "ingest queue full", map[string]any{
			"accepted": queued,
			"dropped":  len(recs) - queued,
		})
		if queued > 0 {
			s.publish(EvReportAccepted, reportAcceptedEvent{
				Count: queued, Dropped: len(recs) - queued, QueueDepth: len(s.queue),
			})
		}
		return
	}
	s.accepted.Add(uint64(queued))
	api.WriteJSON(w, http.StatusAccepted, map[string]any{"accepted": queued})
	s.publish(EvReportAccepted, reportAcceptedEvent{Count: queued, QueueDepth: len(s.queue)})
}

// handleReportBin is the batched binary ingest edge (POST /report/bin): one
// length-prefixed frame carries many reports, delta-decoded against the
// sink's per-node last-vector cache. The commit semantics — all-or-nothing
// decode, ONE group-commit WAL record, 202 only after queue + fsync — live
// in commitBinaryFrame, shared with the persistent stream listener; this
// handler only maps the outcome onto HTTP status codes.
//
// On any non-202 response the client must drop its baselines and
// retransmit with full encoding: depending on where the request failed the
// sink's delta cache may (shed, WAL failure) or may not (bad frame) have
// advanced, and full records are the one encoding that is correct against
// either state — they ignore the cache and overwrite it, resyncing both
// sides.
func (s *Server) handleReportBin(w http.ResponseWriter, r *http.Request) {
	// The frame header caps payloads at MaxFramePayload; cap the HTTP body
	// read at exactly one maximal frame so an unbounded body cannot pin the
	// connection or the heap.
	body := http.MaxBytesReader(w, r.Body, packet.FrameHeaderLen+packet.MaxFramePayload)
	raw, err := io.ReadAll(body)
	if err != nil {
		s.badReqs.Add(1)
		if isBodyTooLarge(err) {
			api.Error(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", packet.FrameHeaderLen+packet.MaxFramePayload), nil)
			return
		}
		api.Error(w, http.StatusBadRequest, "read body: "+err.Error(), nil)
		return
	}
	out := s.commitBinaryFrame(raw)
	switch out.status {
	case packet.StreamAck:
		api.WriteJSON(w, http.StatusAccepted, map[string]any{"accepted": out.accepted})
	case packet.StreamNackBad:
		api.Error(w, http.StatusBadRequest, out.msg, nil)
	case packet.StreamNackBusy:
		api.Unavailable(w, out.retryAfter, out.msg, map[string]any{
			"accepted": out.accepted,
			"dropped":  out.dropped,
		})
	default: // StreamNackUnavailable: degraded or journal failure
		api.Unavailable(w, out.retryAfter, out.msg, out.detail)
	}
}

// isBodyTooLarge reports whether a body read failed because it outgrew the
// MaxBytesReader cap (the clean-413 case, distinct from a torn upload).
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func (s *Server) handleDiagnosis(w http.ResponseWriter, r *http.Request) {
	if s.deg.Active() {
		if sum := s.lastGood.Load(); sum != nil {
			reason, _ := s.deg.Reason()
			w.Header().Set("X-Vn2-Degraded", reason)
			api.WriteJSON(w, http.StatusOK, sum)
			return
		}
	}
	api.WriteJSON(w, http.StatusOK, s.mon.Snapshot())
}

// healthBody is the shared /healthz + /readyz payload: the liveness view
// plus the readiness verdict and why.
func (s *Server) healthBody() (body map[string]any, ready bool) {
	reason, since := s.deg.Reason()
	body = map[string]any{
		"status":      "ok",
		"ready":       true,
		"uptime_s":    time.Since(s.started).Seconds(),
		"queue_depth": len(s.queue),
	}
	if s.jnl != nil {
		body["wal_segments"] = s.jnl.Segments()
		body["wal_next_lsn"] = s.jnl.NextLSN()
		body["wal_applied"] = s.applied.Watermark()
	}
	switch {
	case reason != "":
		body["status"] = "degraded"
		body["ready"] = false
		body["reason"] = reason
		body["degraded_for_s"] = time.Since(since).Seconds()
	case s.draining.Load():
		body["status"] = "draining"
		body["ready"] = false
		body["reason"] = "draining: graceful shutdown in progress"
	default:
		return body, true
	}
	return body, false
}

// handleHealthz is LIVENESS: it answers 200 for as long as the process
// can serve HTTP at all, including degraded (read-only last-good) and
// draining states — a supervisor must not kill a sink that is merely
// shedding ingest. Routability is /readyz's question; the body carries
// the same ready/status fields either way so a human probing /healthz
// still sees the whole story.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body, _ := s.healthBody()
	api.WriteJSON(w, http.StatusOK, body)
}

// handleReadyz is READINESS: 200 only when the sink is accepting and
// applying new reports. Degraded (up but read-only: WAL down, diagnosis
// failing, backlog shed) and draining (graceful shutdown started) both
// answer 503 with the state named in the body, so a router health probe
// stops routing to this shard without the process being declared dead.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body, ready := s.healthBody()
	if !ready {
		api.WriteJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// handleMetrics serves the flat expvar-style counters gathered from every
// layer's registered provider. The key set (and therefore the marshaled
// bytes, since JSON maps sort keys) is byte-compatible with the
// pre-registry handler.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.reg.Gather())
}

// handleStatus is the machine-readable superset of /metrics: every metrics
// key plus uptime, model provenance, degraded detail, stream/bus health,
// and the swap history.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	m := s.reg.Gather()
	for k, v := range s.statusReg.Gather() {
		m[k] = v
	}
	api.WriteJSON(w, http.StatusOK, m)
}

// handleModel answers GET /model: the serving generation, drift view, swap
// history, and lifecycle machinery state.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	cur := s.lc.Current()
	version, cooldown, probation := s.lc.State()
	body := map[string]any{
		"version":             version,
		"rank":                cur.Model.Rank,
		"metrics":             cur.Model.Metrics(),
		"lifecycle":           s.opts.Lifecycle,
		"drift":               s.mon.DriftStats(),
		"retraining":          s.lc.Retraining(),
		"probation":           probation,
		"cooldown_ticks":      cooldown,
		"retrains":            s.lc.Retrains.Load(),
		"retrain_failures":    s.lc.RetrainFails.Load(),
		"candidates_rejected": s.lc.CandRejects.Load(),
		"swaps":               s.lc.Swaps.Load(),
		"rollbacks":           s.lc.Rollbacks.Load(),
		"history":             s.lc.History(),
	}
	api.WriteJSON(w, http.StatusOK, body)
}
