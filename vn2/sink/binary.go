package sink

import (
	"fmt"
	"time"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/vn2/sink/ingest"
)

// binOutcome is the transport-independent verdict on one binary frame. The
// HTTP handler maps it onto status codes (202/400/503) and the stream
// listener onto the 8-byte ACK/NACK response — the commit semantics are
// identical on both edges because they run the same commitBinaryFrame.
type binOutcome struct {
	status   packet.StreamStatus
	accepted int            // records queued
	dropped  int            // records shed by a full queue (StreamNackBusy)
	msg      string         // human-readable reason for NACKs
	detail   map[string]any // extra response payload (HTTP edge)
	// retryAfter is the backoff hint in seconds for backpressure NACKs. The
	// HTTP edge sends it as the 503 Retry-After header, the stream edge in
	// the VN2A response's hint byte — one value, both transports.
	retryAfter int
}

// Backoff hints, in seconds. Busy is transient (the queue drains on the
// next tick); unavailable (degraded/draining) clears on operator or
// probe timescales.
const (
	retryAfterBusy        = 1
	retryAfterUnavailable = 5
)

// commitBinaryFrame decodes one VN2F frame against the sink's delta cache
// and commits it: one group-commit WAL record (fully materialized) and one
// queue insertion per report, under the lifecycle swap gate. The frame is
// all-or-nothing at the decode/cache layer; queue shedding can still accept
// a prefix, which the outcome reports so the client knows the surplus it
// must retransmit (full-encoded — on ANY non-ACK outcome the client's delta
// baselines are suspect and it must Forget).
//
// The ACK contract matches handleReport's 202: StreamAck is returned only
// after every record is queued AND the batch record is fsynced to the WAL.
func (s *Server) commitBinaryFrame(raw []byte) binOutcome {
	if s.deg.Active() {
		reason, _ := s.deg.Reason()
		return binOutcome{
			status:     packet.StreamNackUnavailable,
			msg:        "degraded: ingest shed, serving last-good diagnosis",
			detail:     map[string]any{"reason": reason},
			retryAfter: retryAfterUnavailable,
		}
	}

	// binMu serializes frame decode (which owns reused arenas and, on
	// success, advances the delta cache) together with the WAL re-encode and
	// enqueue, so the cache observes batches in exactly queue order.
	s.binMu.Lock()
	recs, err := s.binDec.Decode(raw)
	if err != nil {
		s.binMu.Unlock()
		s.badReqs.Add(1)
		s.binRejects.Add(1)
		return binOutcome{
			status: packet.StreamNackBad,
			msg:    "bad binary frame (resend full encoding): " + err.Error(),
		}
	}
	s.binFrames.Add(1)
	s.binRecords.Add(uint64(len(recs)))
	s.received.Add(uint64(len(recs)))

	// The read side of the swap gate spans the whole batch: its single WAL
	// append and every queue insertion happen with no swap record between
	// them, so the batch lands on one side of every generation boundary in
	// both orders — exactly the per-record contract of handleReport, at
	// batch granularity.
	s.lc.Gate.RLock()
	var lsn uint64
	if s.jnl != nil {
		s.binEnc.Reset()
		ferr := error(nil)
		for i := range recs {
			if ferr = s.binEnc.AddFull(recs[i].Node, recs[i].Epoch, recs[i].Vector); ferr != nil {
				break
			}
		}
		var frame []byte
		if ferr == nil {
			frame, ferr = s.binEnc.Frame()
		}
		if ferr == nil {
			lsn, ferr = s.jnl.AppendBatch(frame)
		}
		if ferr != nil {
			s.lc.Gate.RUnlock()
			s.binMu.Unlock()
			s.enterDegraded(fmt.Sprintf("%s: append batch: %v", degradedWAL, ferr))
			return binOutcome{
				status:     packet.StreamNackUnavailable,
				msg:        "journal unavailable, report not accepted",
				detail:     map[string]any{"reason": ferr.Error()},
				retryAfter: retryAfterUnavailable,
			}
		}
	}
	queued := 0
	shed := false
	for i := range recs {
		// Records carry LSN 0: the batch has ONE LSN and it must not be
		// marked applied until the last queued record has been ingested —
		// marking earlier would let the watermark (and a snapshot
		// truncation) advance past records still sitting in the queue. The
		// mark rides a barrier item enqueued after the batch, below.
		select {
		case s.queue <- ingest.Item{Rec: recs[i]}:
			queued++
		default:
			shed = true
		}
		if shed {
			break
		}
	}
	if s.jnl != nil {
		if queued == 0 || shed {
			// Nothing downstream will mark the batch (queued == 0), or the
			// queue is full (shed) and a barrier send would block on the very
			// congestion that caused the shed. Mark now: the batch is being
			// NACKed, so no durability promise attaches to it — the client
			// retransmits, and a crash-replay of the journaled batch is
			// surplus absorbed by the monitor's duplicate/stale handling.
			s.applied.Mark(lsn)
		} else {
			// The barrier marks the batch applied only after everything
			// queued ahead of it has been ingested. The send blocks (the
			// ingest loop is draining); the timeout only fires in a wedged
			// server, where marking immediately is the lesser evil — the
			// journaled batch is not lost, a restart replays it.
			batchLSN := lsn
			select {
			case s.queue <- ingest.Item{LSN: batchLSN, Apply: func() {}}:
			case <-time.After(5 * time.Second):
				s.applied.Mark(batchLSN)
			}
		}
	}
	s.lc.Gate.RUnlock()
	s.binMu.Unlock()
	if s.jnl != nil {
		if err := s.jnl.Sync(); err != nil {
			s.enterDegraded(fmt.Sprintf("%s: sync batch: %v", degradedWAL, err))
			return binOutcome{
				status:     packet.StreamNackUnavailable,
				msg:        "journal unavailable, report not accepted",
				detail:     map[string]any{"reason": err.Error()},
				retryAfter: retryAfterUnavailable,
			}
		}
	}
	if shed {
		s.accepted.Add(uint64(queued))
		s.rejected.Add(uint64(len(recs) - queued))
		if queued > 0 {
			s.publish(EvReportAccepted, reportAcceptedEvent{
				Count: queued, Dropped: len(recs) - queued, QueueDepth: len(s.queue),
			})
		}
		return binOutcome{
			status:     packet.StreamNackBusy,
			accepted:   queued,
			dropped:    len(recs) - queued,
			msg:        "ingest queue full",
			retryAfter: retryAfterBusy,
		}
	}
	s.accepted.Add(uint64(queued))
	s.publish(EvReportAccepted, reportAcceptedEvent{Count: queued, QueueDepth: len(s.queue)})
	return binOutcome{status: packet.StreamAck, accepted: queued}
}
