package sink

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/internal/tracegen"
	"github.com/wsn-tools/vn2/vn2"
)

// serveFixtures builds (once) a calibration trace and a trained model from
// the same generator + trainer the CLI subcommands wrap, exactly as an
// operator would.
type fixtures struct {
	dir       string
	tracePath string
	modelPath string
	// tail maps each node to its last calibration record, for crafting the
	// next live report.
	tail map[int]trace.Record
}

var (
	fixOnce sync.Once
	fix     fixtures
	fixErr  error
)

// trainModelFile trains a rank-r model from the trace CSV and saves it,
// mirroring `vn2 train -rank r -all-states`.
func trainModelFile(tracePath, outPath string, rank int) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	ds, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	model, _, err := vn2.Train(ds.States(), vn2.TrainConfig{
		Rank:              rank,
		CompressAllStates: true,
		Seed:              1,
	})
	if err != nil {
		return err
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := model.Save(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func serveFixtures(t *testing.T) fixtures {
	t.Helper()
	fixOnce.Do(func() {
		dir, err := os.MkdirTemp("", "vn2-sink-test-")
		if err != nil {
			fixErr = err
			return
		}
		fix.dir = dir
		fix.tracePath = filepath.Join(dir, "trace.csv")
		fix.modelPath = filepath.Join(dir, "model.json")
		res, err := tracegen.Testbed(tracegen.TestbedOptions{Seed: 3, Scenario: tracegen.ScenarioExpansive})
		if err != nil {
			fixErr = fmt.Errorf("tracegen: %w", err)
			return
		}
		tf, err := os.Create(fix.tracePath)
		if err != nil {
			fixErr = err
			return
		}
		if err := res.Dataset.WriteCSV(tf); err != nil {
			tf.Close()
			fixErr = fmt.Errorf("write trace: %w", err)
			return
		}
		if err := tf.Close(); err != nil {
			fixErr = err
			return
		}
		if err := trainModelFile(fix.tracePath, fix.modelPath, 6); err != nil {
			fixErr = fmt.Errorf("train: %w", err)
			return
		}
		fix.tail = make(map[int]trace.Record)
		for _, id := range res.Dataset.Nodes() {
			recs := res.Dataset.Records(id)
			fix.tail[int(id)] = recs[len(recs)-1]
		}
	})
	if fixErr != nil {
		t.Fatalf("fixtures: %v", fixErr)
	}
	return fix
}

// hotReport derives the next report for a node with a violent counter jump
// the frozen detector is certain to flag.
func (f fixtures) hotReport(t *testing.T, node int, epochsAhead int) trace.Record {
	t.Helper()
	last, ok := f.tail[node]
	if !ok {
		t.Fatalf("node %d not in calibration trace", node)
	}
	v := append([]float64(nil), last.Vector...)
	for k := 0; k < 6 && k < len(v); k++ {
		v[k] += 1e7
	}
	return trace.Record{Node: last.Node, Epoch: last.Epoch + epochsAhead, Vector: v}
}

func (f fixtures) nodes() []int {
	out := make([]int, 0, len(f.tail))
	for id := range f.tail {
		out = append(out, id)
	}
	return out
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// noSleep makes retries never wall-clock sleep in tests.
func noSleep(time.Duration) {}
