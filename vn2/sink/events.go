package sink

import (
	"sort"
	"strconv"

	"github.com/wsn-tools/vn2/vn2/online"
	"github.com/wsn-tools/vn2/vn2/sink/lifecycle"
	"github.com/wsn-tools/vn2/vn2/sink/store"
)

// The event taxonomy published on the bus and streamed over GET /stream.
// Every type is currently at payload schema version 1 (the Event.V field);
// payload shapes are documented in DESIGN.md "Event taxonomy".
const (
	// EvReportAccepted: a POST /report put records on the queue.
	// Payload: {count, dropped?, queue_depth}.
	EvReportAccepted = "ReportAccepted"
	// EvEpochDiagnosed: a drain diagnosed states of one epoch.
	// Payload: {epoch, states, causes} — causes maps cause name → summed
	// contribution across the epoch's diagnosed states.
	EvEpochDiagnosed = "EpochDiagnosed"
	// EvDriftStats: the monitor's rolling drift view after a drain.
	// Payload: {model_version, window, unattributed, unattributed_rate,
	// mean_residual, residual_p50, residual_p90, residual_p99, quarantine}
	// — the same key names the drift_* metrics use, minus the prefix.
	EvDriftStats = "DriftStats"
	// EvModelSwapped / EvModelRolledBack: a lifecycle generation change was
	// fully applied. Payload: store.SwapEvent {version, parent, origin, at}.
	EvModelSwapped    = "ModelSwapped"
	EvModelRolledBack = "ModelRolledBack"
	// EvDegradedEntered / EvDegradedCleared: the degraded-mode state machine
	// transitioned. Payload: {reason}.
	EvDegradedEntered = "DegradedEntered"
	EvDegradedCleared = "DegradedCleared"
	// EvSnapshotWritten: a snapshot landed on disk.
	// Payload: {wal_applied, bytes, model_version}.
	EvSnapshotWritten = "SnapshotWritten"
	// EvHandoffImported / EvHandoffReleased: a shard handoff moved node
	// ownership through this sink. Payload: {dir, nodes}.
	EvHandoffImported = "HandoffImported"
	EvHandoffReleased = "HandoffReleased"
)

type reportAcceptedEvent struct {
	Count      int `json:"count"`
	Dropped    int `json:"dropped,omitempty"`
	QueueDepth int `json:"queue_depth"`
}

// epochDiagnosedEvent renders an epoch's cause distribution with named
// causes (ψ column index → "psiN"), which is what the dashboard's bar chart
// keys on.
type epochDiagnosedEvent struct {
	Epoch  int                `json:"epoch"`
	States int                `json:"states"`
	Causes map[string]float64 `json:"causes"`
}

// driftEvent mirrors online.DriftStats under the stream's key names (the
// drift_* metric names without the prefix), so dashboard and /metrics
// readers speak one vocabulary.
type driftEvent struct {
	ModelVersion     uint64  `json:"model_version"`
	Window           int     `json:"window"`
	Unattributed     int     `json:"unattributed"`
	UnattributedRate float64 `json:"unattributed_rate"`
	MeanResidual     float64 `json:"mean_residual"`
	ResidualP50      float64 `json:"residual_p50"`
	ResidualP90      float64 `json:"residual_p90"`
	ResidualP99      float64 `json:"residual_p99"`
	Quarantine       int     `json:"quarantine"`
}

func driftEventOf(ds online.DriftStats) driftEvent {
	return driftEvent{
		ModelVersion:     ds.ModelVersion,
		Window:           ds.Window,
		Unattributed:     ds.WindowUnattributed,
		UnattributedRate: ds.UnattributedRate,
		MeanResidual:     ds.MeanResidual,
		ResidualP50:      ds.P50,
		ResidualP90:      ds.P90,
		ResidualP99:      ds.P99,
		Quarantine:       ds.Quarantine,
	}
}

type degradedEvent struct {
	Reason string `json:"reason"`
}

type snapshotEvent struct {
	WALApplied   uint64 `json:"wal_applied"`
	Bytes        int    `json:"bytes"`
	ModelVersion uint64 `json:"model_version"`
}

type handoffEvent struct {
	Dir   string `json:"dir"`
	Nodes int    `json:"nodes"`
}

// publish fires one versioned event into the bus. Marshal failures are
// counted by the bus; the serving path never cares.
func (s *Server) publish(typ string, data any) {
	_, _ = s.bus.Publish(typ, 1, data)
}

// publishDiagnosed turns one drain's output into stream events: one
// EpochDiagnosed per distinct epoch the drain touched (ascending), then the
// refreshed DriftStats.
func (s *Server) publishDiagnosed(out []online.Flagged) {
	seen := make(map[int]struct{}, 4)
	epochs := make([]int, 0, 4)
	for _, f := range out {
		if _, ok := seen[f.State.Epoch]; !ok {
			seen[f.State.Epoch] = struct{}{}
			epochs = append(epochs, f.State.Epoch)
		}
	}
	sort.Ints(epochs)
	for _, e := range epochs {
		ec, ok := s.mon.EpochCauses(e)
		if !ok {
			continue // already rotated out of the rolling window
		}
		s.publish(EvEpochDiagnosed, epochEvent(ec))
	}
	s.publish(EvDriftStats, driftEventOf(s.mon.DriftStats()))
}

// epochEvent converts the monitor's positional distribution into the named
// map the stream (and dashboard) carry.
func epochEvent(ec online.EpochCauses) epochDiagnosedEvent {
	causes := make(map[string]float64, len(ec.Distribution))
	for i, v := range ec.Distribution {
		if v > 0 {
			causes[causeName(i)] = v
		}
	}
	return epochDiagnosedEvent{Epoch: ec.Epoch, States: ec.States, Causes: causes}
}

// causeName labels a ψ basis column for human consumption.
func causeName(i int) string {
	return "psi" + strconv.Itoa(i)
}

// onModelSwap is the lifecycle's OnSwap hook: a fully-applied generation
// change becomes a stream event, typed by its origin.
func (s *Server) onModelSwap(ev store.SwapEvent) {
	typ := EvModelSwapped
	if ev.Origin == lifecycle.OriginRollback {
		typ = EvModelRolledBack
	}
	s.publish(typ, ev)
}
