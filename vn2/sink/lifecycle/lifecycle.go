// Package lifecycle is the self-healing model layer of the sink:
// residual-driven drift detection (vn2/online's DriftStats), shadow retrain
// off the serving path, a validation gate over a held-out window, an atomic
// versioned hot-swap journaled through the WAL, and a probation window with
// automatic rollback. The Manager owns the generation state machine and the
// two locks that order swaps against the rest of the sink (the swap gate
// and the snapshot mutex); journaling and queue insertion are injected as
// hooks so this package never touches the WAL or the ingest queue directly.
// See DESIGN.md "Model lifecycle & drift" for the state machine and the
// crash-consistency argument.
package lifecycle

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
	"github.com/wsn-tools/vn2/vn2/online"
	"github.com/wsn-tools/vn2/vn2/sink/store"
)

// Typed lifecycle failures surfaced at startup.
var (
	// ErrSwapFileMissing reports a WAL swap record whose persisted model file
	// is gone. The swap ordering (file before record) makes this corruption
	// or operator deletion, never a crash window.
	ErrSwapFileMissing = errors.New("serve: model swap record references a missing model file")
	// ErrSwapFileMismatch reports a swap model file whose embedded meta does
	// not carry the version the WAL record promised.
	ErrSwapFileMismatch = errors.New("serve: model swap file does not match its WAL record")
)

// Swap origins, recorded in WAL swap records and model-file meta.
const (
	OriginUpdate   = "update"
	OriginRollback = "rollback"
)

// HistoryMax bounds the kept swap history.
const HistoryMax = 64

// Set is one immutable generation of serving state: the model, the detector
// screening for it, its version, and its serialized envelope (what
// snapshots embed and the models directory files contain).
type Set struct {
	Model   *vn2.Model
	Det     *trace.Detector
	Version uint64
	Raw     json.RawMessage
}

// pendingSwap rides the ingest queue as a barrier item (through the Enqueue
// hook's opaque apply closure): everything enqueued before it is diagnosed
// by the outgoing model, everything after by the new one — the same
// boundary a WAL replay reconstructs from the record's LSN.
type pendingSwap struct {
	rec store.SwapRecord
	set *Set
}

// Config is the lifecycle's knobs, already defaulted by the sink.
type Config struct {
	Enabled        bool          // lifecycle machinery on/off (Tick is a no-op when false upstream)
	ModelsDir      string        // directory for persisted model generations
	DriftRate      float64       // unattributed-rate trigger
	DriftMin       int           // min drift-window fill before triggering
	DriftRegress   float64       // p50 regression factor trigger
	RetrainTimeout time.Duration // shadow retrain deadline
	Probation      int           // post-swap window before commit/rollback
	RollbackMargin float64       // mean-residual regression factor that reverts
	ResidThreshold float64       // monitor's unattributed cutoff
	HoldoutMin     int           // min held-out states to judge a candidate
	CooldownTicks  int           // base trigger cooldown, in drain ticks
	Refreeze       bool          // re-anchor the detector on accepted swaps (opt-in)
	Sync           bool          // run retrains inline in the tick (tests/chaos only)
	Workers        int           // solver goroutines for retrain/validation
}

// Hooks are the seams back into the sink root. Enqueue must journal rec and
// insert apply as a barrier into the ingest queue, both under Gate (the
// sink implements the 5s full-queue fallback there). DrainErr counts a
// failed pre-swap drain into the sink's drain_errors. OnSwap fires after a
// swap (or rollback) is fully applied — the bus event seam. Any hook may be
// nil.
type Hooks struct {
	Enqueue  func(rec store.SwapRecord, apply func()) error
	DrainErr func()
	OnSwap   func(ev store.SwapEvent)
}

// Manager owns the lifecycle state machine for one sink.
type Manager struct {
	cfg   Config
	mon   *online.Monitor
	sleep func(time.Duration)
	hooks Hooks

	// Gate excludes report journaling while a swap record is appended +
	// enqueued, making queue order equal LSN order at the generation
	// boundary. The sink's report path takes the read side.
	Gate sync.RWMutex
	// SnapMu serializes snapshot capture against swap application so no
	// snapshot sees a half-applied swap. The sink's writeSnapshot holds it
	// for the whole capture.
	SnapMu sync.Mutex

	// mu guards the generation state. cur is the serving generation; prev
	// is kept during a swap's probation window so a regression can revert.
	mu       sync.Mutex
	cur      *Set
	prev     *Set
	baseMean float64 // pre-swap mean residual: the rollback baseline
	p50Base  float64 // healthy-regime p50 baseline for the regression trigger
	p50Set   bool
	hist     []store.SwapEvent
	cooldown int // drain ticks the trigger stays quiet
	rejectN  int // consecutive rejected candidates (backoff exponent)

	retraining atomic.Bool
	wg         sync.WaitGroup

	Retrains     atomic.Uint64 // shadow retrains launched
	RetrainFails atomic.Uint64 // retrains that errored/panicked/timed out
	CandRejects  atomic.Uint64 // candidates the validation gate refused
	Swaps        atomic.Uint64 // applied hot-swaps (including rollbacks)
	Rollbacks    atomic.Uint64 // probation regressions that auto-reverted
}

// New builds a Manager serving cur. sleep is the retry sleeper (nil =
// time.Sleep).
func New(cfg Config, mon *online.Monitor, cur *Set, sleep func(time.Duration), hooks Hooks) *Manager {
	return &Manager{cfg: cfg, mon: mon, cur: cur, sleep: sleep, hooks: hooks}
}

// Current returns the serving generation.
func (m *Manager) Current() *Set {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// History returns a copy of the swap history, oldest first.
func (m *Manager) History() []store.SwapEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]store.SwapEvent(nil), m.hist...)
}

// SeedHistory installs snapshot-restored history (startup only).
func (m *Manager) SeedHistory(hist []store.SwapEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hist = append(m.hist, hist...)
}

// State answers /model's mutable-state fields in one lock hold.
func (m *Manager) State() (version uint64, cooldown int, probation bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.Version, m.cooldown, m.prev != nil
}

// Retraining reports whether a shadow retrain is in flight.
func (m *Manager) Retraining() bool { return m.retraining.Load() }

// Wait blocks until any in-flight shadow retrain lands (shutdown path).
func (m *Manager) Wait() { m.wg.Wait() }

// InjectBaseline overrides the rollback baseline (tests provoke rollbacks
// with it).
func (m *Manager) InjectBaseline(v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.baseMean = v
}

// Metrics writes the lifecycle counters into a metrics gather.
func (m *Manager) Metrics(out map[string]any) {
	out["model_swaps"] = m.Swaps.Load()
	out["model_rollbacks"] = m.Rollbacks.Load()
	out["model_retrains"] = m.Retrains.Load()
	out["model_retrain_failures"] = m.RetrainFails.Load()
	out["model_candidates_rejected"] = m.CandRejects.Load()
}

// recordSwapLocked folds an applied swap into the history. Caller holds mu.
func (m *Manager) recordSwapLocked(rec store.SwapRecord) store.SwapEvent {
	ev := store.SwapEvent{
		Version: rec.Version,
		Parent:  rec.Parent,
		Origin:  rec.Origin,
		At:      time.Now().UTC(),
	}
	m.hist = append(m.hist, ev)
	if over := len(m.hist) - HistoryMax; over > 0 {
		m.hist = append(m.hist[:0], m.hist[over:]...)
	}
	return ev
}

// relResidual mirrors the monitor's classification arithmetic: the
// scale-free residual ‖s−wΨ‖/‖s‖, clamped to [0,1].
func relResidual(m *vn2.Model, delta []float64, residual float64) float64 {
	norm, err := m.NormalizedNorm(delta)
	if err != nil || norm < 1e-12 {
		if residual > 1e-12 {
			return 1
		}
		return 0
	}
	r := residual / norm
	if r > 1 {
		r = 1
	}
	return r
}

// Tick advances the lifecycle state machine by one drain tick: probation
// verdicts first (commit or roll back the newest swap), then cooldown, then
// the drift trigger that launches a shadow retrain.
func (m *Manager) Tick() {
	ds := m.mon.DriftStats()

	m.mu.Lock()
	// Probation: after a swap the previous generation is kept until the new
	// one has served a full window. A mean residual regressing past the
	// pre-swap baseline by the rollback margin auto-reverts.
	if m.prev != nil && ds.ModelVersion == m.cur.Version {
		if ds.Window >= m.cfg.Probation {
			if m.baseMean > 1e-9 && ds.MeanResidual > m.baseMean*m.cfg.RollbackMargin {
				from, to := m.cur, m.prev
				base := m.baseMean
				m.prev = nil
				// A reverted candidate earns a long quiet period: the drift
				// that triggered it is still there, and retrying immediately
				// would thrash.
				m.cooldown = m.cfg.CooldownTicks * 8
				m.mu.Unlock()
				fmt.Fprintf(os.Stderr,
					"vn2 serve: rollback: v%d mean residual %.4f regressed past pre-swap %.4f (margin %.2f), reverting to v%d content\n",
					from.Version, ds.MeanResidual, base, m.cfg.RollbackMargin, to.Version)
				if err := m.swapTo(to.Model, to.Det, from.Version, OriginRollback); err != nil {
					fmt.Fprintln(os.Stderr, "vn2 serve: rollback swap:", err)
				}
				return
			}
			m.prev = nil // candidate survived probation: committed
		}
	}
	if m.cooldown > 0 {
		m.cooldown--
		m.mu.Unlock()
		return
	}
	if m.retraining.Load() {
		m.mu.Unlock()
		return
	}
	// Freeze the healthy-regime quantile baseline the first time the window
	// fills for this generation; quantile regression is judged against it.
	if ds.Window >= m.cfg.DriftMin && !m.p50Set {
		m.p50Base, m.p50Set = ds.P50, true
	}
	trigger := ""
	if ds.Window >= m.cfg.DriftMin {
		switch {
		case ds.UnattributedRate >= m.cfg.DriftRate:
			trigger = fmt.Sprintf("unattributed rate %.3f >= %.3f over %d states",
				ds.UnattributedRate, m.cfg.DriftRate, ds.Window)
		case m.p50Set && m.p50Base > 1e-9 &&
			ds.P50 >= m.p50Base*m.cfg.DriftRegress &&
			ds.P50 >= m.cfg.ResidThreshold/2:
			trigger = fmt.Sprintf("residual p50 %.4f regressed %.1fx past baseline %.4f",
				ds.P50, ds.P50/m.p50Base, m.p50Base)
		}
	}
	m.mu.Unlock()
	if trigger == "" {
		return
	}
	if !m.retraining.CompareAndSwap(false, true) {
		return
	}
	m.Retrains.Add(1)
	fmt.Fprintf(os.Stderr, "vn2 serve: drift detected (model v%d): %s; shadow retrain started\n", ds.ModelVersion, trigger)
	if m.cfg.Sync {
		m.runRetrain()
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.runRetrain()
	}()
}

// retrainBackoff sets the post-failure cooldown: exponential in the number
// of consecutive rejections so a persistent regime the model cannot learn
// stops burning retrains.
func (m *Manager) retrainBackoff() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejectN++
	shift := min(m.rejectN, 6)
	m.cooldown = m.cfg.CooldownTicks << shift
}

// applySwap installs a generation at its barrier position in the ingest
// order: drain everything the outgoing model still owns, swap the monitor,
// then publish the new current set. Runs on the sink's ingest path via the
// barrier closure.
func (m *Manager) applySwap(ps *pendingSwap) {
	// Exclude snapshot capture for the whole transition so no snapshot sees
	// a half-applied swap.
	m.SnapMu.Lock()
	defer m.SnapMu.Unlock()
	if _, err := m.mon.Drain(); err != nil {
		// The batch is back in pending and will be diagnosed by the new
		// model; losing generation purity here beats losing the states.
		if m.hooks.DrainErr != nil {
			m.hooks.DrainErr()
		}
		fmt.Fprintln(os.Stderr, "vn2 serve: pre-swap drain failed:", err)
	}
	pre := m.mon.DriftStats()
	if err := m.mon.SwapModel(ps.set.Version, ps.set.Model, ps.set.Det); err != nil {
		fmt.Fprintf(os.Stderr, "vn2 serve: swap to v%d not applied: %v\n", ps.set.Version, err)
		return
	}
	m.mu.Lock()
	if ps.rec.Origin == OriginRollback {
		m.prev = nil
		m.baseMean = 0
	} else {
		m.prev = m.cur
		m.baseMean = pre.MeanResidual
	}
	m.cur = ps.set
	m.p50Base, m.p50Set = 0, false
	ev := m.recordSwapLocked(ps.rec)
	m.mu.Unlock()
	m.Swaps.Add(1)
	if ps.rec.Origin == OriginRollback {
		m.Rollbacks.Add(1)
	}
	fmt.Fprintf(os.Stderr, "vn2 serve: model hot-swapped to v%d (%s, parent v%d)\n",
		ps.set.Version, ps.rec.Origin, ps.rec.Parent)
	if m.hooks.OnSwap != nil {
		m.hooks.OnSwap(ev)
	}
}

// swapTo persists the new generation, journals the swap, and enqueues the
// barrier item that applies it. Ordering is the crash-consistency contract:
//
//  1. model (and detector) file: tmp + fsync + rename + dir fsync
//  2. WAL swap record appended + fsynced under the swap gate
//  3. barrier item enqueued under the same gate
//
// Steps 2–3 live behind the Enqueue hook (the sink root owns the journal
// and the queue). A crash after (1) leaves an orphan file — harmless. A
// crash after (2) replays the swap from the WAL against the file (1)
// guaranteed. The gate excludes report journaling between (2) and (3), so
// the queue order equals the LSN order at the boundary and a replay
// reconstructs exactly which reports each generation diagnosed.
func (m *Manager) swapTo(model *vn2.Model, det *trace.Detector, parent uint64, origin string) error {
	if m.cfg.ModelsDir == "" {
		return fmt.Errorf("serve: lifecycle swap requires -models")
	}
	version := parent + 1
	var raw bytes.Buffer
	err := model.SaveVersioned(&raw, vn2.ModelMeta{
		ModelVersion: version,
		Parent:       parent,
		Origin:       origin,
		SavedAt:      time.Now().UTC(),
	})
	if err != nil {
		return fmt.Errorf("serialize model v%d: %w", version, err)
	}
	rec := store.SwapRecord{Version: version, Parent: parent, Origin: origin, File: store.ModelFileName(version)}
	if err := m.persistFile(rec.File, raw.Bytes()); err != nil {
		return fmt.Errorf("persist model v%d: %w", version, err)
	}
	cur := m.Current()
	if det != cur.Det {
		db, err := json.Marshal(det)
		if err != nil {
			return fmt.Errorf("serialize detector v%d: %w", version, err)
		}
		rec.Detector = store.DetectorFileName(version)
		if err := m.persistFile(rec.Detector, db); err != nil {
			return fmt.Errorf("persist detector v%d: %w", version, err)
		}
	}
	set := &Set{Model: model, Det: det, Version: version, Raw: json.RawMessage(raw.Bytes())}
	if m.hooks.Enqueue == nil {
		return fmt.Errorf("serve: lifecycle swap has no enqueue hook")
	}
	ps := &pendingSwap{rec: rec, set: set}
	return m.hooks.Enqueue(rec, func() { m.applySwap(ps) })
}

// ReplaySwap re-applies a journaled swap during WAL replay: load the
// persisted generation and install it at the record's position. The
// snapshot may already reflect the swap (its monitor state can be newer
// than its watermark); then only the serving set is updated.
func (m *Manager) ReplaySwap(rec store.SwapRecord) error {
	if m.cfg.ModelsDir == "" {
		return fmt.Errorf("%w: swap to v%d replayed but -models is not set", ErrSwapFileMissing, rec.Version)
	}
	b, err := os.ReadFile(filepath.Join(m.cfg.ModelsDir, rec.File))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s (v%d)", ErrSwapFileMissing, rec.File, rec.Version)
	}
	if err != nil {
		return err
	}
	model, meta, err := vn2.LoadVersioned(bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("load swap model %s: %w", rec.File, err)
	}
	if meta.ModelVersion != rec.Version {
		return fmt.Errorf("%w: %s carries v%d, record says v%d",
			ErrSwapFileMismatch, rec.File, meta.ModelVersion, rec.Version)
	}
	det := m.Current().Det
	if rec.Detector != "" {
		db, err := os.ReadFile(filepath.Join(m.cfg.ModelsDir, rec.Detector))
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %s (v%d)", ErrSwapFileMissing, rec.Detector, rec.Version)
		}
		if err != nil {
			return err
		}
		nd := &trace.Detector{}
		if err := json.Unmarshal(db, nd); err != nil {
			return fmt.Errorf("load swap detector %s: %w", rec.Detector, err)
		}
		if !nd.Valid() {
			return fmt.Errorf("%w: %s holds an uncalibrated detector", ErrSwapFileMismatch, rec.Detector)
		}
		det = nd
	}
	if m.mon.ModelVersion() < rec.Version {
		if _, err := m.mon.Drain(); err != nil {
			return fmt.Errorf("drain before replayed swap: %w", err)
		}
		if err := m.mon.SwapModel(rec.Version, model, det); err != nil {
			return fmt.Errorf("replay swap to v%d: %w", rec.Version, err)
		}
	}
	m.mu.Lock()
	m.cur = &Set{Model: model, Det: det, Version: rec.Version, Raw: json.RawMessage(b)}
	m.prev = nil // probation does not survive a restart (documented)
	m.recordSwapLocked(rec)
	m.mu.Unlock()
	return nil
}

// persistFile atomically writes one modelsDir file, directory fsync
// included, so the rename is durable before the WAL record that references
// the file by name.
func (m *Manager) persistFile(name string, data []byte) error {
	if err := os.MkdirAll(m.cfg.ModelsDir, 0o755); err != nil {
		return err
	}
	return store.WriteFileAtomic(filepath.Join(m.cfg.ModelsDir, name), data, true)
}
