package lifecycle

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/wsn-tools/vn2/internal/retry"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
	"github.com/wsn-tools/vn2/vn2/online"
)

// runRetrain is the shadow retrain: quarantine + held-out window through
// vn2.Update under a deadline, validation gate, then the hot-swap. It never
// runs on the serving path; a panic is contained, counted, and backed off.
func (m *Manager) runRetrain() {
	defer m.retraining.Store(false)
	defer func() {
		if r := recover(); r != nil {
			m.RetrainFails.Add(1)
			m.retrainBackoff()
			fmt.Fprintf(os.Stderr, "vn2 serve: shadow retrain panicked: %v\n", r)
		}
	}()

	cur := m.Current()
	holdout := m.mon.RecentWindow()
	if len(holdout) < m.cfg.HoldoutMin {
		// Not enough evidence to judge a candidate; wait for more stream.
		m.retrainBackoff()
		return
	}
	quar := m.mon.Quarantine()
	// The training window: the unexplained states (what the new basis must
	// learn) plus the held-out recent window (what it must not forget).
	window := make([]trace.StateVector, 0, len(quar)+len(holdout))
	window = append(window, quar...)
	for _, f := range holdout {
		window = append(window, f.State)
	}

	cand, err := m.trainCandidate(cur, window)
	if err != nil {
		m.RetrainFails.Add(1)
		m.retrainBackoff()
		fmt.Fprintln(os.Stderr, "vn2 serve: shadow retrain failed:", err)
		return
	}
	if reason := m.ValidateCandidate(cur, cand, holdout); reason != "" {
		m.CandRejects.Add(1)
		m.retrainBackoff()
		fmt.Fprintf(os.Stderr, "vn2 serve: candidate v%d rejected: %s\n", cur.Version+1, reason)
		return
	}
	m.mu.Lock()
	m.rejectN = 0
	m.mu.Unlock()

	det := cur.Det
	if m.cfg.Refreeze {
		// Opt-in: re-anchor "routine variation" on the very window that
		// drifted. Refreezing from exception states declares them the new
		// normal — that is the point of the flag, and why it is off by
		// default.
		if nd, err := det.Refreeze(window); err == nil {
			det = nd
		} else {
			fmt.Fprintln(os.Stderr, "vn2 serve: detector refreeze failed, keeping frozen calibration:", err)
		}
	}
	if err := m.swapTo(cand, det, cur.Version, OriginUpdate); err != nil {
		m.RetrainFails.Add(1)
		m.retrainBackoff()
		fmt.Fprintln(os.Stderr, "vn2 serve: hot-swap failed:", err)
	}
}

// trainCandidate runs vn2.Update under the retrain deadline with restart
// retries. The solve itself cannot be interrupted, so the deadline races it
// in a goroutine and an expired attempt's late result is dropped.
func (m *Manager) trainCandidate(cur *Set, window []trace.StateVector) (*vn2.Model, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.RetrainTimeout)
	defer cancel()
	var cand *vn2.Model
	b := retry.New(50*time.Millisecond, 2*time.Second, 0x5eed)
	err := retry.Do(ctx, b, 3, m.sleep, func() error {
		type result struct {
			m   *vn2.Model
			err error
		}
		ch := make(chan result, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					ch <- result{err: fmt.Errorf("update panicked: %v", r)}
				}
			}()
			cm, _, err := cur.Model.Update(window, vn2.TrainConfig{
				CompressAllStates: true,
				Workers:           m.cfg.Workers,
			})
			ch <- result{m: cm, err: err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				return r.err
			}
			cand = r.m
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	if err != nil {
		return nil, err
	}
	return cand, nil
}

// candConsistencyMin is the fraction of previously-attributed holdout states
// whose dominant cause the candidate must preserve: the no-silent-label-churn
// gate. Update warm-starts from the current basis, so cause indices are
// comparable across generations.
const candConsistencyMin = 0.7

// ValidateCandidate replays the held-out window through the candidate and
// accepts only if the mean relative residual improves AND
// previously-attributed diagnoses keep their dominant cause. Returns the
// rejection reason, or "" on acceptance.
func (m *Manager) ValidateCandidate(cur *Set, cand *vn2.Model, holdout []online.Flagged) string {
	states := make([]trace.StateVector, len(holdout))
	for i, f := range holdout {
		states[i] = f.State
	}
	diags, err := cand.DiagnoseBatch(states, vn2.DiagnoseConfig{Workers: m.cfg.Workers})
	if err != nil {
		return fmt.Sprintf("holdout replay failed: %v", err)
	}
	var curSum, candSum float64
	attributed, consistent := 0, 0
	for i, f := range holdout {
		if f.Diagnosis == nil {
			continue
		}
		curRel := relResidual(cur.Model, f.State.Delta, f.Diagnosis.Residual)
		candRel := relResidual(cand, f.State.Delta, diags[i].Residual)
		curSum += curRel
		candSum += candRel
		if dom := f.Diagnosis.Dominant(); dom >= 0 && curRel < m.cfg.ResidThreshold {
			attributed++
			if diags[i].Dominant() == dom {
				consistent++
			}
		}
	}
	n := float64(len(holdout))
	curMean, candMean := curSum/n, candSum/n
	if candMean >= curMean {
		return fmt.Sprintf("mean holdout residual %.4f does not improve on %.4f", candMean, curMean)
	}
	if attributed > 0 && float64(consistent) < candConsistencyMin*float64(attributed) {
		return fmt.Sprintf("dominant-cause churn: only %d/%d previously-attributed states kept their cause (need %.0f%%)",
			consistent, attributed, candConsistencyMin*100)
	}
	return ""
}
