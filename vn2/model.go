// Package vn2 is the public API of the VN2 network-performance visibility
// tool (Li et al., ICDCS 2014). VN2 quantifies a sensor node's state as the
// variation of 43 injected metrics between successive reports, learns a
// representative matrix Ψ of network exceptions with Non-negative Matrix
// Factorization, and attributes new abnormal states to one or more root
// causes by non-negative projection onto Ψ.
//
// Typical use:
//
//	states := dataset.States()
//	model, report, err := vn2.Train(states, vn2.TrainConfig{})
//	diag, err := model.Diagnose(newState)
//	for _, rc := range diag.Ranked {
//	    exp, _ := model.Explain(rc.Cause, 5)
//	    fmt.Println(exp.Summary())
//	}
package vn2

import (
	"errors"
	"fmt"
	"math"

	"github.com/wsn-tools/vn2/internal/mat"
	"github.com/wsn-tools/vn2/internal/trace"
)

// Errors returned by the package.
var (
	// ErrNotTrained reports use of a zero-valued model.
	ErrNotTrained = errors.New("vn2: model is not trained")
	// ErrBadCause reports a root-cause index outside [0, Rank).
	ErrBadCause = errors.New("vn2: root cause index out of range")
	// ErrStateLength reports a state whose metric count does not match the
	// model.
	ErrStateLength = errors.New("vn2: state length does not match model")
	// ErrNoStates reports training on an empty state set.
	ErrNoStates = errors.New("vn2: no states to train on")
)

// Model is a trained VN2 representative matrix with everything needed to
// diagnose new states.
type Model struct {
	// Psi is the r×M representative matrix on the normalized magnitude
	// scale; each row is a root-cause vector.
	Psi *mat.Dense `json:"psi"`
	// Signatures is the r×M signed interpretation of each root cause,
	// scaled to [-1,1] per row — the Fig. 4 / Fig. 5(c–f) view.
	Signatures *mat.Dense `json:"signatures"`
	// Scale holds the per-metric normalization divisors applied before
	// factorization and at inference time.
	Scale []float64 `json:"scale"`
	// MetricNames are the M metric labels, in vector order.
	MetricNames []string `json:"metric_names"`
	// Rank is the compression factor r.
	Rank int `json:"rank"`
	// Keep is the Algorithm-2 retained-information fraction used during
	// training.
	Keep float64 `json:"keep"`
	// TrainStates is the number of exception states factorized.
	TrainStates int `json:"train_states"`
	// Labels holds optional expert labels per root cause (Problem 2's
	// output); persisted with the model. May be nil.
	Labels map[int]string `json:"labels,omitempty"`
}

// SetLabel attaches an expert label to root cause j, replacing any prior
// label. Empty labels remove the entry.
func (m *Model) SetLabel(j int, label string) error {
	if !m.trained() {
		return ErrNotTrained
	}
	if j < 0 || j >= m.Rank {
		return fmt.Errorf("%w: %d of %d", ErrBadCause, j, m.Rank)
	}
	if label == "" {
		delete(m.Labels, j)
		return nil
	}
	if m.Labels == nil {
		m.Labels = make(map[int]string)
	}
	m.Labels[j] = label
	return nil
}

// Label returns root cause j's expert label, or "" when unlabeled. Like an
// unset label, an untrained model or an out-of-range j yields "" — the
// mirror of SetLabel's validation, so freshly trained models (nil Labels)
// and bad indices are safe to query.
func (m *Model) Label(j int) string {
	if !m.trained() || j < 0 || j >= m.Rank {
		return ""
	}
	return m.Labels[j]
}

// trained reports whether the model carries a usable basis.
func (m *Model) trained() bool {
	return m != nil && m.Psi != nil && m.Rank > 0 && len(m.Scale) > 0
}

// Metrics returns M, the metric count.
func (m *Model) Metrics() int {
	if m.Psi == nil {
		return 0
	}
	return m.Psi.Cols()
}

// normalize maps a raw state delta onto the model's training scale,
// returning the magnitude vector used for projection.
func (m *Model) normalize(delta []float64) ([]float64, error) {
	if len(delta) != len(m.Scale) {
		return nil, fmt.Errorf("%w: state %d, model %d", ErrStateLength, len(delta), len(m.Scale))
	}
	out := make([]float64, len(delta))
	for i, v := range delta {
		out[i] = math.Abs(v) / m.Scale[i]
	}
	return out, nil
}

// RootCause returns root cause j's basis row (normalized magnitude space).
func (m *Model) RootCause(j int) ([]float64, error) {
	if !m.trained() {
		return nil, ErrNotTrained
	}
	if j < 0 || j >= m.Rank {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadCause, j, m.Rank)
	}
	return m.Psi.Row(j), nil
}

// Signature returns root cause j's signed, [-1,1]-scaled metric profile.
func (m *Model) Signature(j int) ([]float64, error) {
	if !m.trained() || m.Signatures == nil {
		return nil, ErrNotTrained
	}
	if j < 0 || j >= m.Rank {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadCause, j, m.Rank)
	}
	return m.Signatures.Row(j), nil
}

// statesMatrix builds the (n×M) normalized magnitude matrix from states
// using the given per-metric scale.
func statesMatrix(states []trace.StateVector, scale []float64) (*mat.Dense, error) {
	if len(states) == 0 {
		return nil, ErrNoStates
	}
	m := len(states[0].Delta)
	if m != len(scale) {
		return nil, fmt.Errorf("%w: states %d, scale %d", ErrStateLength, m, len(scale))
	}
	out := mat.MustNew(len(states), m)
	for i, s := range states {
		if len(s.Delta) != m {
			return nil, fmt.Errorf("%w: state %d has %d metrics", ErrStateLength, i, len(s.Delta))
		}
		row := out.RawRow(i)
		for k, v := range s.Delta {
			row[k] = math.Abs(v) / scale[k]
		}
	}
	return out, nil
}
