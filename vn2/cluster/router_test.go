package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2/sink/ingest"
)

// fakeShard is a scriptable stand-in for one `vn2 serve` shard: it records
// every record that reaches its ingest endpoints (decoding both the JSON
// and the binary path with the sink's own decoder) and serves a scripted
// readiness verdict.
type fakeShard struct {
	mu    sync.Mutex
	ready bool
	fail  bool // ingest answers 503
	recs  []trace.Record
	dec   *ingest.BinaryDecoder
	ts    *httptest.Server
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	f := &fakeShard{ready: true, dec: ingest.NewBinaryDecoder()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /report", func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.fail {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		recs, err := ingest.Decode(raw)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		f.recs = append(f.recs, recs...)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("POST /report/bin", func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.fail {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		recs, err := f.dec.Decode(raw)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		for _, rec := range recs {
			rec.Vector = append([]float64(nil), rec.Vector...)
			f.recs = append(f.recs, rec)
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.ready && !f.fail {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeShard) setFail(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = v
}

func (f *fakeShard) records() []trace.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]trace.Record(nil), f.recs...)
}

func testRecords(n, epochs int) []trace.Record {
	var recs []trace.Record
	for e := 1; e <= epochs; e++ {
		for id := 1; id <= n; id++ {
			recs = append(recs, trace.Record{
				Node:   packet.NodeID(id),
				Epoch:  e,
				Vector: []float64{float64(id), float64(e), float64(id * e)},
			})
		}
	}
	return recs
}

func newTestRouter(t *testing.T, shards []*fakeShard) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.ts.URL
	}
	r, err := NewRouter(Config{
		Shards:   urls,
		Seed:     7,
		Attempts: 2,
		RetryMin: time.Microsecond,
		RetryMax: time.Microsecond,
		Sleep:    func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

func postBody(t *testing.T, url, ct string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, ct, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestRouterForwardSplit: a mixed-node JSON batch lands on each node's
// ring owner, with per-node record order preserved.
func TestRouterForwardSplit(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t), newFakeShard(t), newFakeShard(t)}
	r, ts := newTestRouter(t, shards)

	recs := testRecords(12, 3)
	body, _ := json.Marshal(recs)
	if resp := postBody(t, ts.URL+"/report", "application/json", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report status %d", resp.StatusCode)
	}

	total := 0
	for i, sh := range shards {
		got := sh.records()
		total += len(got)
		lastEpoch := map[packet.NodeID]int{}
		for _, rec := range got {
			if own := r.Ring().Owner(rec.Node); own != i {
				t.Fatalf("shard %d received node %d owned by shard %d", i, rec.Node, own)
			}
			if rec.Epoch <= lastEpoch[rec.Node] {
				t.Fatalf("shard %d: node %d epoch %d arrived out of order", i, rec.Node, rec.Epoch)
			}
			lastEpoch[rec.Node] = rec.Epoch
		}
	}
	if total != len(recs) {
		t.Fatalf("shards received %d records, want %d", total, len(recs))
	}
}

// TestRouterForwardBin: the binary path decodes at the router and reaches
// shards as full-encoded frames with the same split guarantee.
func TestRouterForwardBin(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t), newFakeShard(t)}
	r, ts := newTestRouter(t, shards)

	recs := testRecords(8, 2)
	enc := packet.NewFrameEncoder()
	var frames [][]byte
	for e := 0; e < 2; e++ {
		enc.Reset()
		for _, rec := range recs[e*8 : (e+1)*8] {
			if err := enc.Add(rec.Node, rec.Epoch, rec.Vector); err != nil {
				t.Fatal(err)
			}
		}
		frame, err := enc.Frame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, append([]byte(nil), frame...))
	}
	for _, frame := range frames {
		if resp := postBody(t, ts.URL+"/report/bin", "application/octet-stream", frame); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("report/bin status %d", resp.StatusCode)
		}
	}
	total := 0
	for i, sh := range shards {
		for _, rec := range sh.records() {
			if own := r.Ring().Owner(rec.Node); own != i {
				t.Fatalf("shard %d received node %d owned by shard %d", i, rec.Node, own)
			}
			total++
		}
	}
	if total != len(recs) {
		t.Fatalf("shards received %d records, want %d", total, len(recs))
	}
}

// TestRouterHoldAndFlush: a down shard's traffic parks in the hold queue
// (zero loss), the breaker trips, and a readiness probe after recovery
// flushes everything FIFO.
func TestRouterHoldAndFlush(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t), newFakeShard(t)}
	r, ts := newTestRouter(t, shards)

	shards[1].setFail(true)
	recs := testRecords(10, 4)
	var wantShard1 []trace.Record
	for _, rec := range recs {
		if r.Ring().Owner(rec.Node) == 1 {
			wantShard1 = append(wantShard1, rec)
		}
	}
	if len(wantShard1) == 0 || len(wantShard1) == len(recs) {
		t.Fatalf("degenerate split: %d/%d on shard 1", len(wantShard1), len(recs))
	}
	for e := 0; e < 4; e++ {
		body, _ := json.Marshal(recs[e*10 : (e+1)*10])
		if resp := postBody(t, ts.URL+"/report", "application/json", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("report status %d", resp.StatusCode)
		}
	}
	if r.Held(1) == 0 {
		t.Fatal("down shard has nothing held")
	}
	if len(shards[1].records()) != 0 {
		t.Fatal("down shard received records")
	}

	// Recovery: probe flips ready and flushes the queue in order.
	shards[1].setFail(false)
	r.ProbeOnce()
	if held := r.Held(1); held != 0 {
		t.Fatalf("%d deliveries still held after recovery probe", held)
	}
	if got := shards[1].records(); !reflect.DeepEqual(got, wantShard1) {
		t.Fatalf("flushed records diverged:\n got %d records\nwant %d records", len(got), len(wantShard1))
	}
	// Shard 0 was never affected.
	wantShard0 := len(recs) - len(wantShard1)
	if got := len(shards[0].records()); got != wantShard0 {
		t.Fatalf("healthy shard received %d, want %d", got, wantShard0)
	}
}

// TestRouterHoldBound: the hold queue is bounded; at capacity the OLDEST
// delivery drops and is counted.
func TestRouterHoldBound(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t)}
	urls := []string{shards[0].ts.URL}
	r, err := NewRouter(Config{
		Shards: urls, Seed: 7, HoldCap: 2, Attempts: 1,
		RetryMin: time.Microsecond, RetryMax: time.Microsecond,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)

	shards[0].setFail(true)
	for e := 1; e <= 3; e++ {
		body, _ := json.Marshal([]trace.Record{{Node: 1, Epoch: e, Vector: []float64{1}}})
		postBody(t, ts.URL+"/report", "application/json", body)
	}
	if held := r.Held(0); held != 2 {
		t.Fatalf("held %d, want HoldCap=2", held)
	}
	if drops := r.HoldDrops(0); drops != 1 {
		t.Fatalf("hold drops %d, want 1", drops)
	}
	// The survivors are the two NEWEST deliveries (epochs 2 and 3).
	shards[0].setFail(false)
	r.ProbeOnce()
	got := shards[0].records()
	if len(got) != 2 || got[0].Epoch != 2 || got[1].Epoch != 3 {
		t.Fatalf("flushed %+v, want epochs 2,3", got)
	}
}

// TestRouterSetShard: repointing a shard marks it unready (traffic holds)
// until a probe confirms the new address, then held traffic lands there.
func TestRouterSetShard(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t)}
	r, ts := newTestRouter(t, shards)

	replacement := newFakeShard(t)
	r.SetShard(0, replacement.ts.URL)

	body, _ := json.Marshal([]trace.Record{{Node: 3, Epoch: 1, Vector: []float64{1}}})
	postBody(t, ts.URL+"/report", "application/json", body)
	if len(replacement.records()) != 0 || r.Held(0) != 1 {
		t.Fatalf("repointed shard got traffic before a probe (held %d)", r.Held(0))
	}
	r.ProbeOnce()
	if got := replacement.records(); len(got) != 1 || got[0].Node != 3 {
		t.Fatalf("replacement records %+v", got)
	}
	if len(shards[0].records()) != 0 {
		t.Fatal("old shard address still received traffic")
	}
}
