package cluster

import (
	"sort"

	"github.com/wsn-tools/vn2/vn2/online"
)

// MergeEpochs combines per-shard epoch contribution exports into the fleet's
// per-epoch cause distributions, bit-identical to what one monitor holding
// every node would produce.
//
// Exactness argument: a single monitor computes an epoch's distribution by
// sorting that epoch's per-node Contributions ascending by node and summing
// their cause strengths in that order (online.epochAcc.causes). Float
// addition is not associative, so merging pre-summed per-shard
// distributions would NOT reproduce those bits. Merging at the Contribution
// level does: the ring partitions nodes across shards, so concatenating
// every shard's contributions for an epoch yields exactly the set the
// single monitor held, and re-sorting by node recovers exactly its
// summation order. The sum is then the same sequence of float additions.
//
// The repo's ingest path derives at most one diagnosed state per (node,
// epoch) — a node reports once per epoch and duplicates/stale reports are
// absorbed — so ties in the node sort do not arise and the sort order is
// total. SliceStable keeps the merge well-defined even if a future caller
// feeds it duplicated nodes.
func MergeEpochs(rank int, shards ...[]online.EpochState) []online.EpochCauses {
	byEpoch := make(map[int][]online.Contribution)
	for _, eps := range shards {
		for _, es := range eps {
			byEpoch[es.Epoch] = append(byEpoch[es.Epoch], es.Contribs...)
		}
	}
	out := make([]online.EpochCauses, 0, len(byEpoch))
	for epoch, contribs := range byEpoch {
		sort.SliceStable(contribs, func(i, j int) bool { return contribs[i].Node < contribs[j].Node })
		ec := online.EpochCauses{Epoch: epoch, States: len(contribs), Distribution: make([]float64, rank)}
		for _, c := range contribs {
			for _, rc := range c.Causes {
				if rc.Cause >= 0 && rc.Cause < rank {
					ec.Distribution[rc.Cause] += rc.Strength
				}
			}
		}
		out = append(out, ec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// FilterOwned keeps only the contributions of nodes the ring assigns to
// shard, dropping whole epochs that end up empty. The fleet merge runs
// every shard's export through this before MergeEpochs: a node mid-handoff
// can transiently have state on BOTH its old and new shard (import lands
// before release — the at-least-once direction), and ownership filtering
// makes that duplication invisible to the merged view.
func FilterOwned(r *Ring, shard int, eps []online.EpochState) []online.EpochState {
	out := make([]online.EpochState, 0, len(eps))
	for _, es := range eps {
		kept := make([]online.Contribution, 0, len(es.Contribs))
		for _, c := range es.Contribs {
			if r.Owner(c.Node) == shard {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 {
			out = append(out, online.EpochState{Epoch: es.Epoch, Contribs: kept})
		}
	}
	return out
}
