package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/wsn-tools/vn2/internal/packet"
)

// MoveNodes moves ownership of a node set from one shard to another by
// driving the sinks' three-step handoff protocol (vn2/sink handoff
// endpoints):
//
//  1. export  — the source returns the nodes' monitor slice as of a
//     queue barrier (every report it has ACKed is inside)
//  2. import  — the target journals the slice (KindHandoff WAL record,
//     fsynced) and merges it at its own barrier
//  3. release — the source journals the release and drops the nodes
//
// Import strictly precedes release: a crash between the two leaves the
// moved state duplicated across both shards — never lost — and the fleet
// merge's ownership filter (FilterOwned) hides the duplication. Re-running
// MoveNodes after any partial failure converges: export is read-only,
// import is idempotent at the monitor level (same epochs, same baselines),
// and release only ever drops what export already copied out.
//
// MoveNodes does NOT update any ring; the caller repoints routing (a new
// ring, or a SetShard) around the move. Moving while reports still route
// to the source is safe but leaves a tail for a second MoveNodes pass.
func MoveNodes(client *http.Client, fromURL, toURL string, nodes []packet.NodeID) error {
	if len(nodes) == 0 {
		return nil
	}
	if client == nil {
		client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	nodesBody, err := json.Marshal(map[string]any{"nodes": nodes})
	if err != nil {
		return err
	}

	slice, err := postJSON(client, fromURL+"/handoff/export", nodesBody)
	if err != nil {
		return fmt.Errorf("cluster: handoff export from %s: %w", fromURL, err)
	}
	if _, err := postJSON(client, toURL+"/handoff/import", slice); err != nil {
		return fmt.Errorf("cluster: handoff import to %s: %w", toURL, err)
	}
	if _, err := postJSON(client, fromURL+"/handoff/release", nodesBody); err != nil {
		return fmt.Errorf("cluster: handoff release from %s: %w", fromURL, err)
	}
	return nil
}

// postJSON posts a JSON body and returns the response body on a 2xx.
func postJSON(client *http.Client, url string, body []byte) ([]byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxFleetBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(out))
	}
	return out, nil
}
