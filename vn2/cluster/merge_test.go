package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/vn2"
	"github.com/wsn-tools/vn2/vn2/online"
)

// contrib builds one node's contribution with adversarial float strengths:
// magnitudes spread over ~17 orders so any change in summation order
// changes the result bits — exactly what the merge must never do.
func contrib(node packet.NodeID, rnd *rand.Rand, rank int) online.Contribution {
	causes := make([]vn2.RankedCause, 0, rank)
	for c := 0; c < rank; c++ {
		mag := float64(uint64(1) << (rnd.Intn(55)))
		causes = append(causes, vn2.RankedCause{Cause: c, Strength: rnd.Float64() * mag / 1e8})
	}
	return online.Contribution{Node: node, Causes: causes}
}

// singleMonitorSum reproduces online.epochAcc.causes: sort ascending by
// node, sum in that order.
func singleMonitorSum(rank int, contribs []online.Contribution) []float64 {
	merged := MergeEpochs(rank, []online.EpochState{{Epoch: 1, Contribs: contribs}})
	return merged[0].Distribution
}

// TestMergeEpochsBitExact: merging ANY partition of an epoch's
// contributions across shards reproduces the single-monitor sum
// bit-for-bit, for several adversarial float workloads and partitions.
func TestMergeEpochsBitExact(t *testing.T) {
	const rank = 6
	rnd := rand.New(rand.NewSource(7))
	var all []online.Contribution
	for n := 1; n <= 40; n++ {
		all = append(all, contrib(packet.NodeID(n), rnd, rank))
	}
	want := singleMonitorSum(rank, all)

	for shards := 2; shards <= 5; shards++ {
		ring := NewRing(42, shards, 0)
		parts := make([][]online.EpochState, shards)
		for s := 0; s < shards; s++ {
			parts[s] = []online.EpochState{{Epoch: 1}}
		}
		// Deal contributions by ring ownership, in a scrambled arrival order
		// (shards export in their own ingest order, not globally sorted).
		scrambled := append([]online.Contribution(nil), all...)
		rnd.Shuffle(len(scrambled), func(i, j int) { scrambled[i], scrambled[j] = scrambled[j], scrambled[i] })
		for _, c := range scrambled {
			s := ring.Owner(c.Node)
			parts[s][0].Contribs = append(parts[s][0].Contribs, c)
		}
		merged := MergeEpochs(rank, parts...)
		if len(merged) != 1 || merged[0].Epoch != 1 || merged[0].States != len(all) {
			t.Fatalf("shards=%d: merged %+v", shards, merged)
		}
		if !reflect.DeepEqual(merged[0].Distribution, want) {
			t.Fatalf("shards=%d: distribution diverged from single-monitor sum\n got %v\nwant %v",
				shards, merged[0].Distribution, want)
		}
	}
}

// TestMergeEpochsMultiEpoch: epochs stay separate and come back sorted.
func TestMergeEpochsMultiEpoch(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	a := contrib(1, rnd, 3)
	b := contrib(2, rnd, 3)
	merged := MergeEpochs(3,
		[]online.EpochState{{Epoch: 5, Contribs: []online.Contribution{a}}},
		[]online.EpochState{{Epoch: 2, Contribs: []online.Contribution{b}}},
	)
	if len(merged) != 2 || merged[0].Epoch != 2 || merged[1].Epoch != 5 {
		t.Fatalf("merged %+v", merged)
	}
	if merged[0].States != 1 || merged[1].States != 1 {
		t.Fatalf("states %d/%d, want 1/1", merged[0].States, merged[1].States)
	}
}

// TestFilterOwnedDedupesHandoff: a node's contribution duplicated across
// two shards (the mid-handoff window) survives on exactly its ring owner,
// so the merged distribution matches the no-duplication fleet.
func TestFilterOwnedDedupesHandoff(t *testing.T) {
	const rank = 4
	rnd := rand.New(rand.NewSource(11))
	ring := NewRing(1, 2, 0)
	var n packet.NodeID
	for n = 1; ring.Owner(n) != 0; n++ {
	}
	moved := contrib(n, rnd, rank) // owned by shard 0, duplicated onto shard 1
	other := contrib(n+1, rnd, rank)

	shard0 := []online.EpochState{{Epoch: 1, Contribs: []online.Contribution{moved}}}
	shard1 := []online.EpochState{{Epoch: 1, Contribs: []online.Contribution{moved, other}}}

	parts := [][]online.EpochState{
		FilterOwned(ring, 0, shard0),
		FilterOwned(ring, 1, shard1),
	}
	kept := 0
	for _, p := range parts {
		for _, es := range p {
			kept += len(es.Contribs)
		}
	}
	wantKept := 1 // moved survives once on shard 0
	if ring.Owner(n+1) == 1 {
		wantKept = 2 // other survives on shard 1
	}
	if kept != wantKept {
		t.Fatalf("kept %d contributions, want %d", kept, wantKept)
	}
	var wantContribs []online.Contribution
	wantContribs = append(wantContribs, moved)
	if ring.Owner(n+1) == 1 {
		wantContribs = append(wantContribs, other)
	}
	want := MergeEpochs(rank, []online.EpochState{{Epoch: 1, Contribs: wantContribs}})
	got := MergeEpochs(rank, parts...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("deduped merge diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestFilterOwnedDropsEmptyEpochs: an epoch whose every contribution
// belongs elsewhere vanishes from the filtered export.
func TestFilterOwnedDropsEmptyEpochs(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	ring := NewRing(1, 2, 0)
	var n packet.NodeID
	for n = 1; ring.Owner(n) != 0; n++ {
	}
	eps := []online.EpochState{{Epoch: 1, Contribs: []online.Contribution{contrib(n, rnd, 2)}}}
	if got := FilterOwned(ring, 1, eps); len(got) != 0 {
		t.Fatalf("foreign-owned epoch survived the filter: %+v", got)
	}
}
