package cluster

import (
	"testing"

	"github.com/wsn-tools/vn2/internal/packet"
)

// TestRingDeterministic pins that the ring is a pure function of
// (seed, shards, vnodes): two independently built rings — standing in for
// two processes, or one process across a restart — agree on every owner.
func TestRingDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 0xdeadbeef} {
		for _, shards := range []int{1, 2, 3, 5, 8} {
			a := NewRing(seed, shards, 0)
			b := NewRing(seed, shards, 0)
			for n := 0; n < 4096; n++ {
				id := packet.NodeID(n)
				if a.Owner(id) != b.Owner(id) {
					t.Fatalf("seed=%d shards=%d node=%d: owners differ across builds (%d vs %d)",
						seed, shards, n, a.Owner(id), b.Owner(id))
				}
			}
		}
	}
}

// TestRingSeedsDiffer sanity-checks that the seed actually matters: two
// different seeds must not produce identical ownership over a large node
// population (for shards >= 2, where ownership can vary at all).
func TestRingSeedsDiffer(t *testing.T) {
	a := NewRing(1, 4, 0)
	b := NewRing(2, 4, 0)
	same := 0
	const N = 4096
	for n := 0; n < N; n++ {
		if a.Owner(packet.NodeID(n)) == b.Owner(packet.NodeID(n)) {
			same++
		}
	}
	if same == N {
		t.Fatalf("seeds 1 and 2 yield identical ownership for all %d nodes", N)
	}
}

// TestRingOwnerInRange pins that every owner is a valid shard index and
// that each shard owns at least one node at realistic populations (no
// empty shard / ring gap bug).
func TestRingOwnerInRange(t *testing.T) {
	const shards = 4
	r := NewRing(42, shards, 0)
	seen := make([]int, shards)
	for n := 0; n < 4096; n++ {
		s := r.Owner(packet.NodeID(n))
		if s < 0 || s >= shards {
			t.Fatalf("node %d: owner %d out of range [0,%d)", n, s, shards)
		}
		seen[s]++
	}
	for s, c := range seen {
		if c == 0 {
			t.Fatalf("shard %d owns no nodes out of 4096", s)
		}
	}
}

// TestRingRebalanceBound pins the consistent-hashing contract: growing
// the ring from k to k+1 shards moves roughly 1/(k+1) of the node IDs —
// only nodes claimed by the new shard's vnode points change owner, and
// every node that stays on an old shard keeps its exact owner.
func TestRingRebalanceBound(t *testing.T) {
	const N = 8192
	for _, k := range []int{2, 3, 4, 7} {
		old := NewRing(9, k, 0)
		grown := NewRing(9, k+1, 0)
		moved := 0
		for n := 0; n < N; n++ {
			id := packet.NodeID(n)
			a, b := old.Owner(id), grown.Owner(id)
			if a == b {
				continue
			}
			// A move is only legal toward the new shard: old points are a
			// subset of the grown ring, so surviving owners never change.
			if b != k {
				t.Fatalf("k=%d node=%d moved %d -> %d (not the new shard)", k, n, a, b)
			}
			moved++
		}
		frac := float64(moved) / N
		want := 1.0 / float64(k+1)
		// Allow 2x slack over the expectation: vnode placement variance is
		// real at 64 vnodes, but 2x still catches an O(1) rebalance bug
		// (naive modulo hashing would move ~k/(k+1) of the nodes).
		if frac > 2*want {
			t.Fatalf("k=%d: moved %.3f of nodes, want <= ~1/%d (2x slack = %.3f)",
				k, frac, k+1, 2*want)
		}
		if moved == 0 {
			t.Fatalf("k=%d: no nodes moved to the new shard", k)
		}
	}
}

// TestRingPartitionStable pins that Partition preserves each node's
// relative order within its shard slice and loses nothing.
func TestRingPartitionStable(t *testing.T) {
	r := NewRing(3, 3, 0)
	nodes := make([]packet.NodeID, 300)
	for i := range nodes {
		nodes[i] = packet.NodeID(i % 100) // duplicates on purpose
	}
	parts := r.Partition(nodes)
	if len(parts) != 3 {
		t.Fatalf("Partition returned %d slices, want 3", len(parts))
	}
	total := 0
	pos := make(map[packet.NodeID]int)
	for i, n := range nodes {
		pos[n] = i
	}
	for s, part := range parts {
		last := -1
		for _, n := range part {
			if r.Owner(n) != s {
				t.Fatalf("node %d landed on shard %d, owner is %d", n, s, r.Owner(n))
			}
			total++
			_ = last
		}
	}
	if total != len(nodes) {
		t.Fatalf("Partition kept %d of %d nodes", total, len(nodes))
	}
	// Order preservation: for each shard, the original indices of its
	// nodes must be increasing for each distinct node's occurrences.
	for s, part := range parts {
		idx := make(map[packet.NodeID][]int)
		for i, n := range nodes {
			if r.Owner(n) == s {
				idx[n] = append(idx[n], i)
			}
		}
		got := make(map[packet.NodeID]int)
		for _, n := range part {
			got[n]++
		}
		for n, occ := range idx {
			if got[n] != len(occ) {
				t.Fatalf("shard %d: node %d appears %d times, want %d", s, n, got[n], len(occ))
			}
		}
	}
}
