// Package cluster shards the sink across N serve processes: a
// deterministic consistent-hash ring partitions node IDs over shards, a
// thin router front door splits incoming batches by ring ownership and
// forwards them with retries, a circuit breaker, and a bounded
// queue-and-hold per shard, and a fleet aggregator merges the shards'
// per-epoch cause distributions into one fleet-wide view. The merge is
// exact (bit-identical to a single sink owning every node) because the
// distributions are additive histograms over per-node contributions and
// the ring partitions nodes, so each contribution exists on exactly one
// shard; see MergeEpochs.
package cluster

import (
	"sort"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/rng"
)

// Domain separators keep vnode point hashes and node hashes in unrelated
// streams even when a shard index happens to equal a node ID.
const (
	ringPointDomain = 0x766e6f6465 // "vnode"
	ringNodeDomain  = 0x6e6f6465   // "node"
)

// DefaultVnodes is the virtual-node count per shard. 64 vnodes keeps the
// max/min shard load ratio within ~20% for uniform node populations while
// the ring stays small enough to rebuild on every topology change.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over node IDs. It is a pure function of
// (seed, shards, vnodes): rebuilding the same tuple in any process yields
// the same ownership map, so the router, the shards, and the chaos
// harness can each derive the partition independently. Adding a shard
// only inserts that shard's vnode points, so existing nodes either keep
// their owner or move to the new shard — the expected moved fraction is
// 1/(k+1) when growing k shards to k+1.
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	seed   uint64
	shards int
	vnodes int
	points []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for the given seed and shard count. vnodes <= 0
// selects DefaultVnodes. shards must be >= 1.
func NewRing(seed uint64, shards, vnodes int) *Ring {
	if shards < 1 {
		panic("cluster: NewRing needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		seed:   seed,
		shards: shards,
		vnodes: vnodes,
		points: make([]ringPoint, 0, shards*vnodes),
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := rng.Key(seed, ringPointDomain, rng.I(s), rng.I(v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	// Ties (astronomically rare 64-bit collisions) break toward the lower
	// shard index so ownership stays deterministic across builds.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard
	})
	return r
}

// Shards returns the shard count the ring was built with.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index owning the given node ID: the shard of
// the first vnode point at or clockwise of the node's hash.
func (r *Ring) Owner(node packet.NodeID) int {
	h := rng.Key(r.seed, ringNodeDomain, uint64(node))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point back to the first
	}
	return r.points[i].shard
}

// Partition splits nodes by owner, preserving each node's position within
// its shard's slice (stable split). The result has Shards() entries.
func (r *Ring) Partition(nodes []packet.NodeID) [][]packet.NodeID {
	out := make([][]packet.NodeID, r.Shards())
	for _, n := range nodes {
		s := r.Owner(n)
		out[s] = append(out[s], n)
	}
	return out
}
