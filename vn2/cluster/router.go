// Package cluster shards the sink horizontally: a deterministic
// consistent-hash ring (ring.go) assigns every sensor node to one of N
// `vn2 serve` shards, a thin router (this file) splits incoming report
// traffic along ring ownership and forwards it, and a fleet merge
// (merge.go) recombines the shards' per-epoch contribution exports into
// distributions bit-identical to a single sink holding every node.
//
// The router is deliberately stateless about diagnosis: it holds no
// monitor, no model, no WAL — only the ring, per-shard delivery machinery
// (retries, a circuit breaker, a bounded hold queue), and counters. Losing
// the router loses nothing durable; shards own all state.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/retry"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2/online"
	"github.com/wsn-tools/vn2/vn2/sink/api"
	"github.com/wsn-tools/vn2/vn2/sink/ingest"
)

// routerRetryTag keys the per-shard backoff jitter streams (internal/rng).
const routerRetryTag = 0x72747230

// Defaults applied by NewRouter for zero Config fields.
const (
	DefaultHoldCap          = 256
	DefaultAttempts         = 4
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
	DefaultProbeInterval    = time.Second
	DefaultHTTPTimeout      = 10 * time.Second
)

// Config parametrizes a Router.
type Config struct {
	// Shards are the shard base URLs, index-aligned with the ring.
	Shards []string
	// Seed keys the ring AND every jitter stream; equal seeds give
	// bit-identical routing and backoff schedules.
	Seed uint64
	// Vnodes is the ring's virtual-node count per shard (0 = DefaultVnodes).
	Vnodes int
	// HoldCap bounds each shard's hold queue in deliveries; at capacity the
	// OLDEST held delivery is dropped and counted — bounded memory beats
	// unbounded growth through a long shard outage, and the drop is never
	// silent (hold_drops / hold_dropped_records in /metrics).
	HoldCap int
	// Attempts bounds one delivery's retry ladder.
	Attempts int
	// RetryMin/RetryMax bound the decorrelated-jitter backoff.
	RetryMin, RetryMax time.Duration
	// BreakerThreshold consecutive delivery failures open a shard's
	// breaker; BreakerCooldown later one probe delivery is admitted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval paces the readiness prober in Run.
	ProbeInterval time.Duration
	// Client is the forwarding HTTP client (nil = a default with
	// DefaultHTTPTimeout).
	Client *http.Client
	// Sleep is the backoff sleeper (nil = time.Sleep); tests and the chaos
	// harness pass a stub so retry ladders run instantly.
	Sleep func(time.Duration)
	// Now is the breaker clock (nil = time.Now).
	Now func() time.Time
}

// heldDelivery is one forward the router is holding for an unavailable
// shard: the fully-encoded body, replayable verbatim.
type heldDelivery struct {
	path        string
	contentType string
	body        []byte
	records     int
}

// shardState is one shard's delivery machinery. Its mutex serializes
// deliveries to the shard, which is what preserves per-node report order:
// every record of a node routes to this one shard, and holds flush FIFO
// before anything newer goes out.
type shardState struct {
	mu      sync.Mutex
	url     string
	ready   bool
	lastErr string
	br      breaker
	hold    []heldDelivery

	forwarded    atomic.Uint64 // deliveries that reached the shard
	held         atomic.Uint64 // deliveries parked in the hold queue
	holdDrops    atomic.Uint64 // held deliveries evicted by a full queue
	holdDropRecs atomic.Uint64 // records inside evicted deliveries
}

// Router is the cluster front door: it speaks the sink's own ingest
// surface (POST /report, POST /report/bin) and fans out along the ring.
type Router struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	sleep  func(time.Duration)
	now    func() time.Time
	shards []*shardState

	// binMu serializes /report/bin traffic: the delta cache in binDec and
	// the re-encoder must observe frames in arrival order.
	binMu  sync.Mutex
	binDec *ingest.BinaryDecoder
	binEnc *packet.FrameEncoder

	received  atomic.Uint64 // records offered on either ingest path
	badReqs   atomic.Uint64
	fleetReqs atomic.Uint64
}

// NewRouter validates cfg, applies defaults, and returns a Router. No
// shard is probed until ProbeOnce or Run; shards start optimistically
// ready so a fresh router forwards immediately.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: Config.Shards must name at least one shard")
	}
	if cfg.HoldCap <= 0 {
		cfg.HoldCap = DefaultHoldCap
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = DefaultAttempts
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Seed, len(cfg.Shards), cfg.Vnodes),
		client: cfg.Client,
		sleep:  cfg.Sleep,
		now:    cfg.Now,
		binDec: ingest.NewBinaryDecoder(),
		binEnc: packet.NewFrameEncoder(),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	if r.sleep == nil {
		r.sleep = time.Sleep
	}
	if r.now == nil {
		r.now = time.Now
	}
	for _, u := range cfg.Shards {
		r.shards = append(r.shards, &shardState{
			url:   u,
			ready: true,
			br:    breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		})
	}
	return r, nil
}

// Ring exposes the router's ring (read-only) so orchestration code and
// tests share one ownership view.
func (r *Router) Ring() *Ring { return r.ring }

// ShardURL returns shard i's current base URL.
func (r *Router) ShardURL(i int) string {
	sh := r.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.url
}

// SetShard repoints shard i at a new base URL (a restarted or relocated
// shard) and marks it unready until a probe confirms it — held traffic
// flushes on that probe, oldest first.
func (r *Router) SetShard(i int, url string) {
	sh := r.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.url = url
	sh.ready = false
	sh.lastErr = "repointed, awaiting readiness probe"
}

// Handler builds the router's HTTP surface: the sink-compatible ingest
// endpoints plus the fleet view and the router's own health and metrics.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /report", r.handleReport)
	mux.HandleFunc("POST /report/bin", r.handleReportBin)
	mux.HandleFunc("GET /fleet", r.handleFleet)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

// handleReport splits a JSON report batch by ring ownership and forwards
// each shard's slice, preserving per-node record order (the split is
// stable). The 202 means every record is either delivered to its owner
// shard or parked in that shard's bounded hold queue; "held" in the
// response says how many are parked.
func (r *Router) handleReport(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 8<<20))
	if err != nil {
		r.badReqs.Add(1)
		api.Error(w, http.StatusBadRequest, "read body: "+err.Error(), nil)
		return
	}
	recs, err := ingest.Decode(raw)
	if err != nil {
		r.badReqs.Add(1)
		api.Error(w, http.StatusBadRequest, "body must be a report, an array of reports, or {\"reports\": [...]}", nil)
		return
	}
	r.received.Add(uint64(len(recs)))

	parts := make([][]trace.Record, len(r.shards))
	for _, rec := range recs {
		s := r.ring.Owner(rec.Node)
		parts[s] = append(parts[s], rec)
	}
	forwarded, heldCount := 0, 0
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		body, err := json.Marshal(part)
		if err != nil {
			api.Error(w, http.StatusInternalServerError, "encode shard batch: "+err.Error(), nil)
			return
		}
		if r.deliver(s, heldDelivery{path: "/report", contentType: "application/json", body: body, records: len(part)}) {
			forwarded += len(part)
		} else {
			heldCount += len(part)
		}
	}
	api.WriteJSON(w, http.StatusAccepted, map[string]any{"accepted": forwarded, "held": heldCount})
}

// handleReportBin terminates the binary delta encoding at the router: the
// frame decodes against the ROUTER's delta cache (one upstream client
// stream), and each shard's slice is re-encoded as a fully-materialized
// frame — shards never see cross-shard delta baselines, so a shard restart
// or handoff cannot desync them.
func (r *Router) handleReportBin(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, packet.FrameHeaderLen+packet.MaxFramePayload))
	if err != nil {
		r.badReqs.Add(1)
		api.Error(w, http.StatusBadRequest, "read body: "+err.Error(), nil)
		return
	}
	r.binMu.Lock()
	recs, err := r.binDec.Decode(raw)
	if err != nil {
		r.binMu.Unlock()
		r.badReqs.Add(1)
		api.Error(w, http.StatusBadRequest, "bad binary frame (resend full encoding): "+err.Error(), nil)
		return
	}
	r.received.Add(uint64(len(recs)))
	parts := make([][]trace.Record, len(r.shards))
	for _, rec := range recs {
		s := r.ring.Owner(rec.Node)
		parts[s] = append(parts[s], rec)
	}
	frames := make([][]byte, len(r.shards))
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		r.binEnc.Reset()
		ferr := error(nil)
		for i := range part {
			if ferr = r.binEnc.AddFull(part[i].Node, part[i].Epoch, part[i].Vector); ferr != nil {
				break
			}
		}
		var frame []byte
		if ferr == nil {
			frame, ferr = r.binEnc.Frame()
		}
		if ferr != nil {
			r.binMu.Unlock()
			api.Error(w, http.StatusInternalServerError, "re-encode shard frame: "+ferr.Error(), nil)
			return
		}
		frames[s] = append([]byte(nil), frame...)
	}
	r.binMu.Unlock()

	forwarded, heldCount := 0, 0
	for s, frame := range frames {
		if frame == nil {
			continue
		}
		if r.deliver(s, heldDelivery{path: "/report/bin", contentType: "application/octet-stream", body: frame, records: len(parts[s])}) {
			forwarded += len(parts[s])
		} else {
			heldCount += len(parts[s])
		}
	}
	api.WriteJSON(w, http.StatusAccepted, map[string]any{"accepted": forwarded, "held": heldCount})
}

// deliver runs one delivery to shard s, returning true when it reached the
// shard and false when it was parked in the hold queue. An unready shard
// or an open breaker holds without attempting; a failed retry ladder trips
// the breaker, marks the shard unready, and holds — order is preserved
// because every later delivery then holds BEHIND this one until a probe
// flushes the queue FIFO.
func (r *Router) deliver(s int, d heldDelivery) bool {
	sh := r.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.ready || len(sh.hold) > 0 || sh.br.allow(r.now()) != nil {
		r.parkLocked(sh, d)
		return false
	}
	if err := r.post(sh.url, d); err != nil {
		sh.br.fail(r.now())
		sh.ready = false
		sh.lastErr = err.Error()
		r.parkLocked(sh, d)
		return false
	}
	sh.br.success()
	sh.forwarded.Add(1)
	return true
}

// parkLocked appends a delivery to the hold queue, evicting the oldest at
// capacity. Caller holds sh.mu.
func (r *Router) parkLocked(sh *shardState, d heldDelivery) {
	if len(sh.hold) >= r.cfg.HoldCap {
		sh.holdDrops.Add(1)
		sh.holdDropRecs.Add(uint64(sh.hold[0].records))
		sh.hold = sh.hold[1:]
	}
	sh.hold = append(sh.hold, d)
	sh.held.Add(1)
}

// post runs one delivery's retry ladder against the shard's current URL.
// A 503's Retry-After is honored as an extra sleep ahead of the jittered
// one — the same contract the reporter applies to the stream hint.
func (r *Router) post(baseURL string, d heldDelivery) error {
	return retry.Do(context.Background(), r.newLadder(baseURL), r.cfg.Attempts, r.sleep, func() error {
		resp, err := r.client.Post(baseURL+d.path, d.contentType, bytes.NewReader(d.body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				r.sleep(time.Duration(secs) * time.Second)
			}
			return fmt.Errorf("shard status %d", resp.StatusCode)
		default:
			return fmt.Errorf("shard status %d", resp.StatusCode)
		}
	})
}

// newLadder returns a fresh backoff for one delivery, keyed by the shard
// URL so schedules stay deterministic but distinct per shard incarnation.
func (r *Router) newLadder(baseURL string) *retry.Backoff {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(baseURL); i++ {
		h ^= uint64(baseURL[i])
		h *= 1099511628211
	}
	return retry.New(r.cfg.RetryMin, r.cfg.RetryMax, routerRetryTag, r.cfg.Seed, h)
}

// ProbeOnce checks every shard's /readyz and flushes held traffic into
// shards that just (re)became ready. Synchronous so tests and the chaos
// harness drive readiness deterministically; Run wraps it in a ticker.
func (r *Router) ProbeOnce() {
	for i := range r.shards {
		r.probeShard(i)
	}
}

func (r *Router) probeShard(i int) {
	sh := r.shards[i]
	sh.mu.Lock()
	url := sh.url
	sh.mu.Unlock()
	resp, err := r.client.Get(url + "/readyz")
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !ok {
		sh.ready = false
		if err != nil {
			sh.lastErr = err.Error()
		} else {
			sh.lastErr = fmt.Sprintf("readyz status %d", resp.StatusCode)
		}
		return
	}
	sh.ready = true
	sh.lastErr = ""
	sh.br.success()
	r.flushHeldLocked(sh)
}

// FlushHeld synchronously drains shard i's hold queue (if the shard is
// ready). Returns how many deliveries flushed.
func (r *Router) FlushHeld(i int) int {
	sh := r.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.ready {
		return 0
	}
	return r.flushHeldLocked(sh)
}

// flushHeldLocked replays held deliveries FIFO, stopping at the first
// failure (the remainder stays held, order intact). Caller holds sh.mu.
func (r *Router) flushHeldLocked(sh *shardState) int {
	n := 0
	for len(sh.hold) > 0 {
		d := sh.hold[0]
		if err := r.post(sh.url, d); err != nil {
			sh.br.fail(r.now())
			sh.ready = false
			sh.lastErr = err.Error()
			return n
		}
		sh.hold = sh.hold[1:]
		sh.br.success()
		sh.forwarded.Add(1)
		n++
	}
	return n
}

// Held reports shard i's current hold-queue depth.
func (r *Router) Held(i int) int {
	sh := r.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.hold)
}

// HoldDrops reports how many held deliveries shard i's bounded queue has
// evicted.
func (r *Router) HoldDrops(i int) uint64 { return r.shards[i].holdDrops.Load() }

// Run probes readiness on a ticker until ctx is done. The ingest handlers
// need no goroutine of their own; this loop only drives recovery.
func (r *Router) Run(ctx context.Context) error {
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			r.ProbeOnce()
		}
	}
}

// shardEpochs is the GET /epochs response shape (vn2/sink handleEpochs).
type shardEpochs struct {
	Rank   int                 `json:"rank"`
	Epochs []online.EpochState `json:"epochs"`
}

// FleetEpochs polls every shard's /epochs export, filters each by ring
// ownership (mid-handoff duplication dedupes here — see FilterOwned), and
// merges into the fleet's per-epoch distributions. Shards that fail to
// answer are returned in missing; the merge covers the rest.
func (r *Router) FleetEpochs() (rank int, merged []online.EpochCauses, missing []int, err error) {
	parts := make([][]online.EpochState, 0, len(r.shards))
	for i := range r.shards {
		se, perr := r.fetchEpochs(i)
		if perr != nil {
			missing = append(missing, i)
			continue
		}
		if se.Rank > rank {
			rank = se.Rank
		}
		parts = append(parts, FilterOwned(r.ring, i, se.Epochs))
	}
	if len(parts) == 0 {
		return 0, nil, missing, fmt.Errorf("cluster: no shard answered /epochs")
	}
	return rank, MergeEpochs(rank, parts...), missing, nil
}

func (r *Router) fetchEpochs(i int) (*shardEpochs, error) {
	sh := r.shards[i]
	sh.mu.Lock()
	url := sh.url
	sh.mu.Unlock()
	resp, err := r.client.Get(url + "/epochs")
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("epochs status %d", resp.StatusCode)
	}
	var se shardEpochs
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxFleetBody)).Decode(&se); err != nil {
		return nil, err
	}
	return &se, nil
}

// maxFleetBody bounds one shard's /epochs response.
const maxFleetBody = 64 << 20

// handleFleet serves the merged fleet view.
func (r *Router) handleFleet(w http.ResponseWriter, req *http.Request) {
	r.fleetReqs.Add(1)
	rank, merged, missing, err := r.FleetEpochs()
	if err != nil {
		api.Unavailable(w, 5, err.Error(), nil)
		return
	}
	body := map[string]any{
		"rank":   rank,
		"shards": len(r.shards),
		"epochs": merged,
	}
	if len(missing) > 0 {
		body["missing_shards"] = missing
		body["partial"] = true
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// handleHealthz reports router liveness plus the per-shard delivery view.
// Always 200: the router is alive if it can answer; degraded shards show
// in the body (and in each shard's own /readyz).
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	type shardHealth struct {
		URL     string `json:"url"`
		Ready   bool   `json:"ready"`
		Breaker string `json:"breaker"`
		Held    int    `json:"held"`
		LastErr string `json:"last_error,omitempty"`
	}
	out := struct {
		Status string        `json:"status"`
		Shards []shardHealth `json:"shards"`
	}{Status: "ok"}
	for _, sh := range r.shards {
		sh.mu.Lock()
		out.Shards = append(out.Shards, shardHealth{
			URL: sh.url, Ready: sh.ready, Breaker: sh.br.stateName(),
			Held: len(sh.hold), LastErr: sh.lastErr,
		})
		if !sh.ready {
			out.Status = "degraded"
		}
		sh.mu.Unlock()
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// handleMetrics serves the router's flat counter map, sink-/metrics-style.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	m := map[string]any{
		"reports_received": r.received.Load(),
		"bad_requests":     r.badReqs.Load(),
		"fleet_requests":   r.fleetReqs.Load(),
		"shards":           len(r.shards),
	}
	var fwd, held, drops, dropRecs, trips uint64
	heldNow := 0
	for _, sh := range r.shards {
		fwd += sh.forwarded.Load()
		held += sh.held.Load()
		drops += sh.holdDrops.Load()
		dropRecs += sh.holdDropRecs.Load()
		sh.mu.Lock()
		heldNow += len(sh.hold)
		trips += sh.br.trips
		sh.mu.Unlock()
	}
	m["deliveries_forwarded"] = fwd
	m["deliveries_held"] = held
	m["hold_depth"] = heldNow
	m["hold_drops"] = drops
	m["hold_dropped_records"] = dropRecs
	m["breaker_trips"] = trips
	api.WriteJSON(w, http.StatusOK, m)
}
