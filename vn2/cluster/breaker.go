package cluster

import (
	"errors"
	"time"
)

// ErrBreakerOpen reports a delivery refused because the shard's breaker is
// open and its cooldown has not elapsed.
var ErrBreakerOpen = errors.New("cluster: shard circuit breaker open")

// breaker is the per-shard circuit breaker, the same three-state machine
// the reporter runs per connection (vn2/reporter), counted over whole
// delivery outcomes — a trip means the shard stayed down through an entire
// retry ladder, threshold times in a row:
//
//	closed ──threshold consecutive failures──▶ open
//	open ──cooldown elapsed──▶ half-open (one probe allowed)
//	half-open ──probe succeeds──▶ closed
//	half-open ──probe fails──▶ open (cooldown restarts)
//
// The clock is injected on every transition check so tests and the chaos
// harness step it deterministically. Not goroutine-safe; the router guards
// each shard's breaker with that shard's mutex.
type breaker struct {
	threshold int
	cooldown  time.Duration

	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	trips    uint64
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// allow reports whether a delivery may proceed at time now. While open it
// returns ErrBreakerOpen until the cooldown elapses, then moves to
// half-open and admits the single probe delivery.
func (b *breaker) allow(now time.Time) error {
	if b.state == breakerOpen {
		if now.Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
	}
	return nil
}

// success closes the breaker and clears the failure streak.
func (b *breaker) success() {
	b.state = breakerClosed
	b.fails = 0
}

// fail records a failed delivery at time now. A half-open probe failure
// reopens immediately; a closed-state failure opens once the streak
// reaches the threshold.
func (b *breaker) fail(now time.Time) {
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		if b.state != breakerOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.openedAt = now
		b.fails = 0
	}
}

func (b *breaker) stateName() string {
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
