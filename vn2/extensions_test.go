package vn2

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/wsn-tools/vn2/internal/metricspec"
	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
)

func TestDiagnoseEpochsGroupsAndRanks(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 31})
	// Two epochs: epoch 100 has a loop fault on two nodes, epoch 101 has a
	// contention fault on one node.
	mk := func(node packet.NodeID, epoch int, loop bool) trace.StateVector {
		d := make([]float64, metricspec.MetricCount)
		if loop {
			d[metricspec.LoopCounter] = 45
			d[metricspec.DuplicateCounter] = 130
			d[metricspec.TransmitCounter] = 420
		} else {
			d[metricspec.NOACKRetransmitCounter] = 320
			d[metricspec.MacBackoffCounter] = 210
		}
		return trace.StateVector{Node: node, Epoch: epoch, Gap: 1, Delta: d}
	}
	states := []trace.StateVector{
		mk(1, 100, true),
		mk(2, 100, true),
		mk(3, 101, false),
	}
	eds, err := model.DiagnoseEpochs(states, DiagnoseConfig{})
	if err != nil {
		t.Fatalf("DiagnoseEpochs: %v", err)
	}
	if len(eds) != 2 {
		t.Fatalf("epochs = %d, want 2", len(eds))
	}
	if eds[0].Epoch != 100 || eds[1].Epoch != 101 {
		t.Fatalf("epoch order = %d,%d", eds[0].Epoch, eds[1].Epoch)
	}
	if eds[0].States != 2 || eds[1].States != 1 {
		t.Errorf("state counts = %d,%d", eds[0].States, eds[1].States)
	}
	if len(eds[0].Combination) == 0 {
		t.Fatal("epoch 100 has no combination")
	}
	// The loop epoch's dominant cause must list both affected nodes.
	top := eds[0].Combination[0].Cause
	nodes := eds[0].AffectedNodes[top]
	if len(nodes) != 2 {
		t.Errorf("affected nodes for dominant cause = %v, want both", nodes)
	}
	// Different fault types land on different dominant causes.
	if eds[0].Combination[0].Cause == eds[1].Combination[0].Cause {
		t.Error("loop epoch and contention epoch share a dominant cause")
	}
}

func TestDiagnoseEpochsErrors(t *testing.T) {
	var empty Model
	if _, err := empty.DiagnoseEpochs(nil, DiagnoseConfig{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained err = %v", err)
	}
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 32})
	if _, err := model.DiagnoseEpochs(nil, DiagnoseConfig{}); !errors.Is(err, ErrNoStates) {
		t.Errorf("empty err = %v", err)
	}
}

func TestFitPRRLearnsLinearMap(t *testing.T) {
	// PRR = 0.95 − 0.3·cause0 − 0.1·cause2 + noise.
	rng := rand.New(rand.NewSource(33))
	var dists [][]float64
	var prr []float64
	for i := 0; i < 200; i++ {
		d := []float64{rng.Float64(), rng.Float64() * 0.2, rng.Float64()}
		dists = append(dists, d)
		prr = append(prr, 0.95-0.3*d[0]-0.1*d[2]+rng.NormFloat64()*0.01)
	}
	est, err := FitPRR(dists, prr, 0)
	if err != nil {
		t.Fatalf("FitPRR: %v", err)
	}
	r2, err := est.Score(dists, prr)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if r2 < 0.9 {
		t.Errorf("R² = %v, want > 0.9 on a linear relationship", r2)
	}
	// A degraded epoch must predict lower PRR than a healthy one.
	healthy, err := est.Predict([]float64{0, 0, 0})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	degraded, err := est.Predict([]float64{1, 0, 1})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if degraded >= healthy {
		t.Errorf("degraded PRR %v not below healthy %v", degraded, healthy)
	}
	if math.Abs(healthy-0.95) > 0.05 {
		t.Errorf("healthy prediction = %v, want ~0.95", healthy)
	}
}

func TestPredictClamped(t *testing.T) {
	est := &PRREstimator{Beta: []float64{2, -5}, Rank: 1}
	hi, err := est.Predict([]float64{0})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if hi != 1 {
		t.Errorf("prediction %v not clamped to 1", hi)
	}
	lo, err := est.Predict([]float64{1})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if lo != 0 {
		t.Errorf("prediction %v not clamped to 0", lo)
	}
}

func TestPRREstimatorErrors(t *testing.T) {
	if _, err := FitPRR(nil, nil, 0); !errors.Is(err, ErrNoStates) {
		t.Errorf("empty FitPRR err = %v", err)
	}
	if _, err := FitPRR([][]float64{{1}}, []float64{0.5, 0.6}, 0); !errors.Is(err, ErrStateLength) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := FitPRR([][]float64{{1}, {2, 3}}, []float64{0.5, 0.6}, 0); !errors.Is(err, ErrStateLength) {
		t.Errorf("ragged err = %v", err)
	}
	var unfitted *PRREstimator
	if _, err := unfitted.Predict([]float64{1}); !errors.Is(err, ErrEstimatorNotFitted) {
		t.Errorf("unfitted err = %v", err)
	}
	est, err := FitPRR([][]float64{{0.1}, {0.9}, {0.4}}, []float64{0.9, 0.2, 0.6}, 0)
	if err != nil {
		t.Fatalf("FitPRR: %v", err)
	}
	if _, err := est.Predict([]float64{1, 2}); !errors.Is(err, ErrStateLength) {
		t.Errorf("length err = %v", err)
	}
	if _, err := est.Score([][]float64{{1}}, nil); !errors.Is(err, ErrStateLength) {
		t.Errorf("score mismatch err = %v", err)
	}
}

func TestPRREndToEndOnSimulatedEpochs(t *testing.T) {
	// End-to-end: epochs with stronger fault activity must predict lower
	// PRR after fitting on simulated history.
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 34})
	rng := rand.New(rand.NewSource(35))
	var dists [][]float64
	var prr []float64
	for e := 0; e < 60; e++ {
		faulty := e%3 == 0
		var states []trace.StateVector
		for node := packet.NodeID(1); node <= 8; node++ {
			d := make([]float64, metricspec.MetricCount)
			for k := range d {
				d[k] = rng.NormFloat64() * 0.2
			}
			if faulty && node <= 3 {
				d[metricspec.LoopCounter] = 40 + rng.Float64()*10
				d[metricspec.DuplicateCounter] = 120 + rng.Float64()*20
				d[metricspec.TransmitCounter] = 400 + rng.Float64()*50
			}
			states = append(states, trace.StateVector{Node: node, Epoch: 100 + e, Gap: 1, Delta: d})
		}
		eds, err := model.DiagnoseEpochs(states, DiagnoseConfig{})
		if err != nil {
			t.Fatalf("DiagnoseEpochs: %v", err)
		}
		dists = append(dists, eds[0].Distribution)
		if faulty {
			prr = append(prr, 0.55+rng.Float64()*0.1)
		} else {
			prr = append(prr, 0.92+rng.Float64()*0.05)
		}
	}
	est, err := FitPRR(dists, prr, 0)
	if err != nil {
		t.Fatalf("FitPRR: %v", err)
	}
	r2, err := est.Score(dists, prr)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if r2 < 0.5 {
		t.Errorf("R² = %v on cause-driven PRR, want > 0.5", r2)
	}
}

func TestDiagnoseBatchParallelMatchesSequential(t *testing.T) {
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 36})
	states := synthStates(60, 37)
	seq, err := model.DiagnoseBatch(states, DiagnoseConfig{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := model.DiagnoseBatch(states, DiagnoseConfig{Workers: 4})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range seq {
		for j := range seq[i].Weights {
			if seq[i].Weights[j] != par[i].Weights[j] {
				t.Fatalf("state %d cause %d differs", i, j)
			}
		}
	}
}

func TestUpdateWarmStartsFromExistingModel(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 38})
	// A fresh batch with the same fault archetypes.
	fresh := synthStates(3000, 99)
	updated, report, err := model.Update(fresh, TrainConfig{Seed: 38})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if updated.Rank != model.Rank {
		t.Errorf("rank changed: %d -> %d", model.Rank, updated.Rank)
	}
	for k := range model.Scale {
		if updated.Scale[k] != model.Scale[k] {
			t.Fatal("Update changed the normalization scale")
		}
	}
	if report.ExceptionStates == 0 {
		t.Error("no exceptions in the update batch")
	}
	// The updated model must still diagnose the planted archetypes, and a
	// loop state must land on a cause whose signature moves Loop_counter.
	s := trace.StateVector{Delta: make([]float64, metricspec.MetricCount)}
	s.Delta[metricspec.LoopCounter] = 45
	s.Delta[metricspec.DuplicateCounter] = 130
	s.Delta[metricspec.TransmitCounter] = 420
	d, err := updated.Diagnose(s)
	if err != nil {
		t.Fatalf("Diagnose on updated: %v", err)
	}
	if d.Dominant() < 0 {
		t.Fatal("updated model found no cause for a loop state")
	}
	// The receiver must be untouched.
	if model.TrainStates == updated.TrainStates && model.Psi == updated.Psi {
		t.Error("Update returned the receiver")
	}
}

func TestUpdateErrors(t *testing.T) {
	var empty Model
	if _, _, err := empty.Update(synthStates(10, 1), TrainConfig{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained err = %v", err)
	}
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 39})
	if _, _, err := model.Update(nil, TrainConfig{}); !errors.Is(err, ErrNoStates) {
		t.Errorf("empty err = %v", err)
	}
	// Too few new states to support the rank: 3 states can yield at most 3
	// exceptions, below rank 4.
	tiny := synthStates(299, 40)[3:6] // calm slice (archetypes at i%300==0,1,2)
	if _, _, err := model.Update(tiny, TrainConfig{}); err == nil {
		t.Error("update with fewer exceptions than rank succeeded")
	}
}

func TestLabelsLifecycle(t *testing.T) {
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 41})
	if err := model.SetLabel(1, "routing loop"); err != nil {
		t.Fatalf("SetLabel: %v", err)
	}
	if model.Label(1) != "routing loop" {
		t.Errorf("Label = %q", model.Label(1))
	}
	if model.Label(0) != "" {
		t.Errorf("unlabeled cause has label %q", model.Label(0))
	}
	exp, err := model.Explain(1, 3)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if exp.Label != "routing loop" {
		t.Errorf("Explanation.Label = %q", exp.Label)
	}
	if !strings.Contains(exp.Summary(), `"routing loop"`) {
		t.Errorf("Summary missing label: %q", exp.Summary())
	}
	// Labels survive save/load.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Label(1) != "routing loop" {
		t.Error("label lost in round trip")
	}
	// Removal.
	if err := model.SetLabel(1, ""); err != nil {
		t.Fatalf("SetLabel remove: %v", err)
	}
	if model.Label(1) != "" {
		t.Error("label not removed")
	}
	// Errors.
	if err := model.SetLabel(99, "x"); !errors.Is(err, ErrBadCause) {
		t.Errorf("bad cause err = %v", err)
	}
	var empty Model
	if err := empty.SetLabel(0, "x"); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained err = %v", err)
	}
}
