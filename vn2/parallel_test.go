package vn2

import (
	"testing"

	"github.com/wsn-tools/vn2/internal/mat"
)

func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	states := synthStates(1500, 11)
	train := func(workers int) (*Model, *TrainReport) {
		model, report, err := Train(states, TrainConfig{Rank: 5, Seed: 7, MaxIter: 120, Workers: workers})
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		return model, report
	}
	wantM, wantR := train(0)
	for _, w := range []int{1, 2, 4, -1} {
		gotM, gotR := train(w)
		if !mat.Equal(wantM.Psi, gotM.Psi, 0) {
			t.Fatalf("workers=%d: Psi differs from sequential", w)
		}
		if !mat.Equal(wantM.Signatures, gotM.Signatures, 0) {
			t.Fatalf("workers=%d: signatures differ from sequential", w)
		}
		if !mat.Equal(wantR.W, gotR.W, 0) {
			t.Fatalf("workers=%d: correlation matrix differs from sequential", w)
		}
		if gotR.Accuracy != wantR.Accuracy || gotR.SparseAccuracy != wantR.SparseAccuracy {
			t.Fatalf("workers=%d: accuracies (%v, %v) differ from sequential (%v, %v)",
				w, gotR.Accuracy, gotR.SparseAccuracy, wantR.Accuracy, wantR.SparseAccuracy)
		}
	}
}

func TestTrainAutoRankBitIdenticalAcrossWorkers(t *testing.T) {
	states := synthStates(1200, 12)
	train := func(workers int) (*Model, *TrainReport) {
		model, report, err := Train(states, TrainConfig{
			Seed: 3, SweepMin: 2, SweepMax: 8, SweepStep: 2, MaxIter: 60, Workers: workers,
		})
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		return model, report
	}
	wantM, wantR := train(0)
	for _, w := range []int{2, 4} {
		gotM, gotR := train(w)
		if gotM.Rank != wantM.Rank {
			t.Fatalf("workers=%d: selected rank %d, sequential picked %d", w, gotM.Rank, wantM.Rank)
		}
		if len(gotR.RankSweep) != len(wantR.RankSweep) {
			t.Fatalf("workers=%d: %d sweep points, want %d", w, len(gotR.RankSweep), len(wantR.RankSweep))
		}
		for i := range wantR.RankSweep {
			if gotR.RankSweep[i] != wantR.RankSweep[i] {
				t.Fatalf("workers=%d: sweep point %d = %+v, want %+v",
					w, i, gotR.RankSweep[i], wantR.RankSweep[i])
			}
		}
		if !mat.Equal(wantM.Psi, gotM.Psi, 0) {
			t.Fatalf("workers=%d: Psi differs from sequential", w)
		}
	}
}
