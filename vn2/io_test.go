package vn2

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// savedModelJSON trains a small model and returns its Save output as a
// generic map for surgical corruption.
func savedModelJSON(t *testing.T) map[string]any {
	t.Helper()
	model, _ := trainSynth(t, 900, TrainConfig{Rank: 4, Seed: 9})
	if err := model.SetLabel(1, "loop"); err != nil {
		t.Fatalf("SetLabel: %v", err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal saved model: %v", err)
	}
	return doc
}

func reload(t *testing.T, doc map[string]any) (*Model, error) {
	t.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return Load(bytes.NewReader(b))
}

// TestLoadMalformed is the table-driven sweep of broken model files: every
// corruption must produce an error (the dimension mismatches a typed
// ErrCorruptModel), never a model that panics later.
func TestLoadMalformed(t *testing.T) {
	corrupt := func(f func(doc, model map[string]any)) func(*testing.T) (*Model, error) {
		return func(t *testing.T) (*Model, error) {
			doc := savedModelJSON(t)
			f(doc, doc["model"].(map[string]any))
			return reload(t, doc)
		}
	}
	truncateMatrix := func(m map[string]any, rows float64) {
		m["rows"] = rows
		data := m["data"].([]any)
		m["data"] = data[:int(rows)*int(m["cols"].(float64))]
	}
	cases := []struct {
		name        string
		load        func(*testing.T) (*Model, error)
		wantCorrupt bool
	}{
		{"truncated envelope", func(t *testing.T) (*Model, error) {
			return Load(strings.NewReader(`{"version":1,"model":{"psi":{"rows":2,`))
		}, false},
		{"missing model key", func(t *testing.T) (*Model, error) {
			return Load(strings.NewReader(`{"version":1}`))
		}, false},
		{"short signatures", corrupt(func(_, m map[string]any) {
			truncateMatrix(m["signatures"].(map[string]any), 2)
		}), true},
		{"signatures wrong cols", corrupt(func(_, m map[string]any) {
			sig := m["signatures"].(map[string]any)
			sig["cols"] = sig["cols"].(float64) - 1
			data := sig["data"].([]any)
			sig["data"] = data[:int(sig["rows"].(float64))*int(sig["cols"].(float64))]
		}), true},
		{"short metric names", corrupt(func(_, m map[string]any) {
			names := m["metric_names"].([]any)
			m["metric_names"] = names[:3]
		}), true},
		{"label outside rank", corrupt(func(_, m map[string]any) {
			m["labels"] = map[string]any{"99": "phantom cause"}
		}), true},
		{"negative label index", corrupt(func(_, m map[string]any) {
			m["labels"] = map[string]any{"-1": "phantom cause"}
		}), true},
		{"scale shorter than basis", corrupt(func(_, m map[string]any) {
			scale := m["scale"].([]any)
			m["scale"] = scale[:5]
		}), false},
		{"rank disagrees with basis", corrupt(func(_, m map[string]any) {
			m["rank"] = m["rank"].(float64) + 1
		}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, err := tc.load(t)
			if err == nil {
				t.Fatalf("corrupt model accepted: %+v", model)
			}
			if tc.wantCorrupt && !errors.Is(err, ErrCorruptModel) {
				t.Fatalf("err = %v, want ErrCorruptModel", err)
			}
		})
	}
}

// TestLoadedCorruptionWouldHavePanicked documents the bug the validation
// fixes: before Load checked Signatures dims, a short Signatures matrix
// panicked inside Signature(j).
func TestLoadValidatedModelIsUsable(t *testing.T) {
	doc := savedModelJSON(t)
	model, err := reload(t, doc)
	if err != nil {
		t.Fatalf("Load of pristine model: %v", err)
	}
	for j := 0; j < model.Rank; j++ {
		if _, err := model.Signature(j); err != nil {
			t.Fatalf("Signature(%d): %v", j, err)
		}
		if _, err := model.Explain(j, 3); err != nil {
			t.Fatalf("Explain(%d): %v", j, err)
		}
	}
	if model.Label(1) != "loop" {
		t.Errorf("Label(1) = %q, want loop", model.Label(1))
	}
}

// TestLabelSafeOnFreshAndBadInput is the regression test for the Label
// panic: a freshly trained model (nil Labels), a nil model, and
// out-of-range indices must all yield "" like an unset label.
func TestLabelSafeOnFreshAndBadInput(t *testing.T) {
	fresh, _ := trainSynth(t, 600, TrainConfig{Rank: 3, Seed: 4})
	if fresh.Labels != nil {
		t.Fatal("fresh model has non-nil Labels; test premise broken")
	}
	for _, j := range []int{-1, 0, 2, 3, 99} {
		if got := fresh.Label(j); got != "" {
			t.Errorf("fresh.Label(%d) = %q, want \"\"", j, got)
		}
	}
	var nilModel *Model
	if got := nilModel.Label(0); got != "" {
		t.Errorf("nil model Label = %q, want \"\"", got)
	}
	var zero Model
	if got := zero.Label(0); got != "" {
		t.Errorf("zero model Label = %q, want \"\"", got)
	}
	// A set label still comes back, and out-of-range stays "".
	if err := fresh.SetLabel(2, "reboot"); err != nil {
		t.Fatalf("SetLabel: %v", err)
	}
	if fresh.Label(2) != "reboot" {
		t.Errorf("Label(2) = %q after SetLabel", fresh.Label(2))
	}
	if fresh.Label(3) != "" {
		t.Errorf("Label(3) = %q, want \"\"", fresh.Label(3))
	}
}
