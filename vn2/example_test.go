package vn2_test

import (
	"fmt"

	"github.com/wsn-tools/vn2/vn2"
)

// ExampleCauseDistribution shows how per-state diagnoses aggregate into the
// distribution plotted in Fig. 5(g–i) and Fig. 6(b).
func ExampleCauseDistribution() {
	diagnoses := []*vn2.Diagnosis{
		{Ranked: []vn2.RankedCause{{Cause: 0, Strength: 2.0}, {Cause: 2, Strength: 0.5}}},
		{Ranked: []vn2.RankedCause{{Cause: 0, Strength: 1.0}}},
		{Ranked: []vn2.RankedCause{{Cause: 1, Strength: 0.5}}},
	}
	dist := vn2.CauseDistribution(diagnoses, 3)
	fmt.Println(dist)
	fmt.Println(vn2.NormalizeDistribution(dist))
	// Output:
	// [3 0.5 0.5]
	// [0.75 0.125 0.125]
}

// ExampleDiagnosis_Dominant shows the ranked view of a diagnosis.
func ExampleDiagnosis_Dominant() {
	d := &vn2.Diagnosis{
		Weights: []float64{0.1, 2.4, 0},
		Ranked: []vn2.RankedCause{
			{Cause: 1, Strength: 2.4},
			{Cause: 0, Strength: 0.1},
		},
	}
	fmt.Println(d.Dominant())
	fmt.Println(d.Normal(3.0))
	// Output:
	// 1
	// true
}
