package vn2

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/wsn-tools/vn2/internal/metricspec"
	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
)

// synthStates builds a training set with three planted fault archetypes on
// top of calm background states, so the factorization has real structure
// to find.
func synthStates(n int, seed int64) []trace.StateVector {
	rng := rand.New(rand.NewSource(seed))
	var out []trace.StateVector
	for i := 0; i < n; i++ {
		delta := make([]float64, metricspec.MetricCount)
		for k := range delta {
			delta[k] = rng.NormFloat64() * 0.2
		}
		switch {
		case i%300 == 0: // retransmission storm / contention archetype
			delta[metricspec.NOACKRetransmitCounter] += 300 + rng.Float64()*60
			delta[metricspec.MacBackoffCounter] += 200 + rng.Float64()*40
		case i%300 == 1: // routing loop archetype
			delta[metricspec.LoopCounter] += 40 + rng.Float64()*10
			delta[metricspec.DuplicateCounter] += 120 + rng.Float64()*30
			delta[metricspec.TransmitCounter] += 400 + rng.Float64()*80
			delta[metricspec.OverflowDropCounter] += 30 + rng.Float64()*10
		case i%300 == 2: // node reboot archetype (counter resets)
			delta[metricspec.Uptime] -= 30000 + rng.Float64()*5000
			delta[metricspec.TransmitCounter] -= 2000 + rng.Float64()*300
			delta[metricspec.ReceiveCounter] -= 1500 + rng.Float64()*300
		}
		out = append(out, trace.StateVector{
			Node:  packet.NodeID(1 + i%10),
			Epoch: 2 + i/10,
			Gap:   1,
			Delta: delta,
		})
	}
	return out
}

func trainSynth(t *testing.T, n int, cfg TrainConfig) (*Model, *TrainReport) {
	t.Helper()
	model, report, err := Train(synthStates(n, 42), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return model, report
}

func TestTrainBasics(t *testing.T) {
	model, report := trainSynth(t, 3000, TrainConfig{Rank: 6, Seed: 1})
	if model.Rank != 6 {
		t.Errorf("Rank = %d", model.Rank)
	}
	if model.Metrics() != metricspec.MetricCount {
		t.Errorf("Metrics = %d", model.Metrics())
	}
	if report.TotalStates != 3000 {
		t.Errorf("TotalStates = %d", report.TotalStates)
	}
	if report.ExceptionStates == 0 || report.ExceptionStates == 3000 {
		t.Errorf("ExceptionStates = %d; extraction should keep a strict subset", report.ExceptionStates)
	}
	if report.Accuracy <= 0 {
		t.Errorf("Accuracy = %v", report.Accuracy)
	}
	if report.SparseAccuracy < report.Accuracy-1e-9 {
		t.Errorf("sparse accuracy %v better than original %v", report.SparseAccuracy, report.Accuracy)
	}
	if !model.Psi.NonNegative() {
		t.Error("Psi has negative entries")
	}
	if len(model.MetricNames) != metricspec.MetricCount || model.MetricNames[int(metricspec.LoopCounter)] != "Loop_counter" {
		t.Error("metric names wrong")
	}
}

func TestTrainEmptyStates(t *testing.T) {
	if _, _, err := Train(nil, TrainConfig{}); !errors.Is(err, ErrNoStates) {
		t.Errorf("err = %v, want ErrNoStates", err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := TrainConfig{Rank: 5, Seed: 9}
	a, _, err := Train(synthStates(2000, 1), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	b, _, err := Train(synthStates(2000, 1), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for j := 0; j < a.Rank; j++ {
		ra, _ := a.RootCause(j)
		rb, _ := b.RootCause(j)
		for k := range ra {
			if ra[k] != rb[k] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestTrainCompressAllStates(t *testing.T) {
	states := synthStates(120, 3)
	_, report, err := Train(states, TrainConfig{Rank: 4, Seed: 2, CompressAllStates: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if report.ExceptionStates != len(states) {
		t.Errorf("ExceptionStates = %d, want all %d", report.ExceptionStates, len(states))
	}
}

func TestTrainAutoRankSweep(t *testing.T) {
	model, report, err := Train(synthStates(2400, 5), TrainConfig{
		Seed: 3, SweepMin: 2, SweepMax: 10, SweepStep: 2, MaxIter: 80,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(report.RankSweep) == 0 {
		t.Fatal("no sweep points recorded")
	}
	if report.SelectedRank != model.Rank {
		t.Errorf("SelectedRank %d != model.Rank %d", report.SelectedRank, model.Rank)
	}
	found := false
	for _, p := range report.RankSweep {
		if p.Rank == model.Rank {
			found = true
		}
	}
	if !found {
		t.Errorf("selected rank %d not among sweep points", model.Rank)
	}
}

func TestTrainRankClampedToData(t *testing.T) {
	// Few exception states: requested rank larger than data must clamp.
	states := synthStates(900, 7)
	model, _, err := Train(states, TrainConfig{Rank: 50, Seed: 1, CompressAllStates: false})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if model.Rank > 43 {
		t.Errorf("rank %d exceeds metric count", model.Rank)
	}
}

func TestDiagnoseRecoversPlantedCause(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 4})

	// A fresh loop-archetype state must be attributed mostly to the same
	// root cause as the training loop states.
	mk := func(kind int) trace.StateVector {
		delta := make([]float64, metricspec.MetricCount)
		switch kind {
		case 0:
			delta[metricspec.NOACKRetransmitCounter] = 320
			delta[metricspec.MacBackoffCounter] = 210
		case 1:
			delta[metricspec.LoopCounter] = 45
			delta[metricspec.DuplicateCounter] = 130
			delta[metricspec.TransmitCounter] = 420
			delta[metricspec.OverflowDropCounter] = 33
		}
		return trace.StateVector{Node: 99, Epoch: 100, Gap: 1, Delta: delta}
	}
	dContention, err := model.Diagnose(mk(0))
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	dLoop, err := model.Diagnose(mk(1))
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if dContention.Dominant() < 0 || dLoop.Dominant() < 0 {
		t.Fatal("no dominant cause inferred")
	}
	if dContention.Dominant() == dLoop.Dominant() {
		t.Error("distinct fault archetypes mapped to the same dominant root cause")
	}
	// The two diagnoses must be stable: diagnosing the same state twice
	// gives identical weights.
	d2, _ := model.Diagnose(mk(1))
	for j := range dLoop.Weights {
		if dLoop.Weights[j] != d2.Weights[j] {
			t.Fatal("diagnosis not deterministic")
		}
	}
}

func TestDiagnoseNormalStateIsQuiet(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 6})
	calm := trace.StateVector{Node: 1, Epoch: 9, Gap: 1, Delta: make([]float64, metricspec.MetricCount)}
	d, err := model.Diagnose(calm)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	var total float64
	for _, w := range d.Weights {
		total += w
	}
	// Faulty states for comparison.
	hot := trace.StateVector{Node: 1, Epoch: 9, Gap: 1, Delta: make([]float64, metricspec.MetricCount)}
	hot.Delta[metricspec.NOACKRetransmitCounter] = 300
	dh, _ := model.Diagnose(hot)
	var hotTotal float64
	for _, w := range dh.Weights {
		hotTotal += w
	}
	if total >= hotTotal {
		t.Errorf("calm state strength %v not below faulty state strength %v", total, hotTotal)
	}
	if !d.Normal(hotTotal / 10) {
		t.Errorf("calm state not Normal at tolerance %v (weights %v)", hotTotal/10, d.Weights)
	}
}

func TestDiagnoseErrors(t *testing.T) {
	var empty Model
	s := trace.StateVector{Delta: make([]float64, metricspec.MetricCount)}
	if _, err := empty.Diagnose(s); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained err = %v", err)
	}
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 8})
	if _, err := model.Diagnose(trace.StateVector{Delta: []float64{1}}); !errors.Is(err, ErrStateLength) {
		t.Errorf("short state err = %v", err)
	}
	if _, err := model.DiagnoseBatch(nil, DiagnoseConfig{}); !errors.Is(err, ErrNoStates) {
		t.Errorf("empty batch err = %v", err)
	}
}

func TestDiagnoseBatchMatchesSingle(t *testing.T) {
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 5, Seed: 10})
	states := synthStates(30, 77)
	batch, err := model.DiagnoseBatch(states, DiagnoseConfig{})
	if err != nil {
		t.Fatalf("DiagnoseBatch: %v", err)
	}
	if len(batch) != len(states) {
		t.Fatalf("batch = %d", len(batch))
	}
	for i := 0; i < 5; i++ {
		single, err := model.Diagnose(states[i])
		if err != nil {
			t.Fatalf("Diagnose: %v", err)
		}
		for j := range single.Weights {
			if math.Abs(single.Weights[j]-batch[i].Weights[j]) > 1e-9 {
				t.Fatalf("batch diverges from single at state %d cause %d", i, j)
			}
		}
	}
}

func TestCauseDistribution(t *testing.T) {
	d1 := &Diagnosis{Ranked: []RankedCause{{Cause: 0, Strength: 2}, {Cause: 2, Strength: 1}}}
	d2 := &Diagnosis{Ranked: []RankedCause{{Cause: 0, Strength: 3}}}
	dist := CauseDistribution([]*Diagnosis{d1, d2}, 4)
	want := []float64{5, 0, 1, 0}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], want[i])
		}
	}
	norm := NormalizeDistribution(dist)
	var sum float64
	for _, v := range norm {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("normalized sum = %v", sum)
	}
	zero := NormalizeDistribution([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("NormalizeDistribution of zeros should stay zero")
	}
}

func TestCorrelationMatrixShape(t *testing.T) {
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 11})
	states := synthStates(25, 5)
	cm, err := model.CorrelationMatrix(states, DiagnoseConfig{})
	if err != nil {
		t.Fatalf("CorrelationMatrix: %v", err)
	}
	if cm.Rows() != 25 || cm.Cols() != 4 {
		t.Errorf("shape %dx%d", cm.Rows(), cm.Cols())
	}
	if !cm.NonNegative() {
		t.Error("correlation strengths must be non-negative")
	}
}

func TestExplain(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 12})
	for j := 0; j < model.Rank; j++ {
		exp, err := model.Explain(j, 5)
		if err != nil {
			t.Fatalf("Explain(%d): %v", j, err)
		}
		if len(exp.Top) != 5 {
			t.Fatalf("Top = %d", len(exp.Top))
		}
		for i := 1; i < len(exp.Top); i++ {
			if exp.Top[i].Weight > exp.Top[i-1].Weight {
				t.Error("Top not sorted by weight")
			}
		}
		if exp.Category < CategoryPhysical || exp.Category > CategoryProtocol {
			t.Errorf("category = %v", exp.Category)
		}
		if exp.Summary() == "" {
			t.Error("empty summary")
		}
	}
}

func TestExplainLoopCauseMentionsLoopHazard(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 13})
	// Find the cause a loop state maps to and check its explanation leans
	// protocol with a loop/duplicate hazard.
	s := trace.StateVector{Delta: make([]float64, metricspec.MetricCount)}
	s.Delta[metricspec.LoopCounter] = 45
	s.Delta[metricspec.DuplicateCounter] = 130
	s.Delta[metricspec.TransmitCounter] = 420
	s.Delta[metricspec.OverflowDropCounter] = 33
	d, err := model.Diagnose(s)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	exp, err := model.Explain(d.Dominant(), 6)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if exp.Category != CategoryProtocol {
		t.Errorf("loop cause category = %v, want protocol", exp.Category)
	}
	if len(exp.Hazards) == 0 {
		t.Error("no Table I hazards attached to a counter-dominated cause")
	}
}

func TestExplainErrors(t *testing.T) {
	var empty Model
	if _, err := empty.Explain(0, 3); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained err = %v", err)
	}
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 3, Seed: 14})
	if _, err := model.Explain(-1, 3); !errors.Is(err, ErrBadCause) {
		t.Errorf("negative cause err = %v", err)
	}
	if _, err := model.Explain(3, 3); !errors.Is(err, ErrBadCause) {
		t.Errorf("overflow cause err = %v", err)
	}
	if _, err := model.RootCause(9); !errors.Is(err, ErrBadCause) {
		t.Errorf("RootCause err = %v", err)
	}
	if _, err := model.Signature(9); !errors.Is(err, ErrBadCause) {
		t.Errorf("Signature err = %v", err)
	}
}

func TestSignatureRange(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 15})
	for j := 0; j < model.Rank; j++ {
		sig, err := model.Signature(j)
		if err != nil {
			t.Fatalf("Signature: %v", err)
		}
		maxAbs := 0.0
		for _, v := range sig {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 1+1e-9 {
			t.Errorf("cause %d signature max |v| = %v > 1", j, maxAbs)
		}
	}
}

func TestRebootSignatureIsNegative(t *testing.T) {
	model, _ := trainSynth(t, 3000, TrainConfig{Rank: 5, Seed: 16})
	// The reboot archetype's dominant cause must show negative signed
	// variation on Uptime (counters reset).
	s := trace.StateVector{Delta: make([]float64, metricspec.MetricCount)}
	s.Delta[metricspec.Uptime] = -32000
	s.Delta[metricspec.TransmitCounter] = -2100
	s.Delta[metricspec.ReceiveCounter] = -1600
	d, err := model.Diagnose(s)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	sig, err := model.Signature(d.Dominant())
	if err != nil {
		t.Fatalf("Signature: %v", err)
	}
	if sig[metricspec.Uptime] >= 0 {
		t.Errorf("reboot cause Uptime signature = %v, want negative", sig[metricspec.Uptime])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	model, _ := trainSynth(t, 2000, TrainConfig{Rank: 4, Seed: 17})
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Rank != model.Rank || loaded.Keep != model.Keep {
		t.Error("metadata lost in round trip")
	}
	// A diagnosis through the loaded model must match the original.
	s := synthStates(1, 99)[0]
	a, _ := model.Diagnose(s)
	b, err := loaded.Diagnose(s)
	if err != nil {
		t.Fatalf("Diagnose on loaded: %v", err)
	}
	for j := range a.Weights {
		if a.Weights[j] != b.Weights[j] {
			t.Fatal("loaded model diagnoses differently")
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	var m Model
	if err := m.Save(&bytes.Buffer{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{bad")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":99,"model":null}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1,"model":null}`)); err == nil {
		t.Error("nil model accepted")
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryPhysical.String() != "physical" || CategoryLink.String() != "link" ||
		CategoryProtocol.String() != "protocol" || Category(9).String() != "Category(9)" {
		t.Error("Category.String mismatch")
	}
}
