package vn2

import (
	"fmt"
	"math"

	"github.com/wsn-tools/vn2/internal/mat"
	"github.com/wsn-tools/vn2/internal/metricspec"
	"github.com/wsn-tools/vn2/internal/nmf"
	"github.com/wsn-tools/vn2/internal/trace"
)

// TrainConfig controls the training pipeline of Section IV.
type TrainConfig struct {
	// Rank fixes the compression factor r. Zero triggers automatic
	// selection via a rank sweep (the Fig. 3(b) procedure).
	Rank int
	// SweepMin/SweepMax bound automatic rank selection. Defaults: 5..40
	// (clamped to the data size).
	SweepMin, SweepMax int
	// SweepStep is the sweep granularity; defaults to 5.
	SweepStep int
	// CompressAllStates skips exception extraction and factorizes every
	// state, as the paper does for the small testbed trace where "normal
	// statuses are not large enough to conceal the representation of
	// exceptions".
	CompressAllStates bool
	// ExceptionThreshold overrides the ε/max(ε) cutoff; ≤0 uses the
	// paper's 0.01.
	ExceptionThreshold float64
	// Keep is the Algorithm-2 retained-information fraction; ≤0 uses 0.9.
	Keep float64
	// MaxIter bounds NMF sweeps; 0 uses 300.
	MaxIter int
	// Seed drives NMF initialization.
	Seed int64
	// Workers bounds the goroutines used by training compute (the rank-
	// selection sweep runs its independent factorizations concurrently and
	// the final factorization parallelizes its update sweeps): 0 keeps
	// training sequential, ≥1 fans out, negative uses GOMAXPROCS. The
	// trained model is bit-identical for any value.
	Workers int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.SweepMin == 0 {
		c.SweepMin = 5
	}
	if c.SweepMax == 0 {
		c.SweepMax = 40
	}
	if c.SweepStep == 0 {
		c.SweepStep = 5
	}
	if c.Keep <= 0 {
		c.Keep = nmf.DefaultKeepFraction
	}
	if c.MaxIter == 0 {
		c.MaxIter = 300
	}
	return c
}

// TrainReport carries training diagnostics.
type TrainReport struct {
	// TotalStates is the input state count; ExceptionStates is how many
	// survived exception extraction (equal when CompressAllStates).
	TotalStates, ExceptionStates int
	// RankSweep holds the Fig. 3(b) points when automatic selection ran.
	RankSweep []nmf.RankPoint
	// SelectedRank is the rank actually used.
	SelectedRank int
	// Accuracy is α = ‖E−WΨ‖ with the original W; SparseAccuracy with the
	// sparsified W̄.
	Accuracy, SparseAccuracy float64
	// Iterations is the NMF sweep count of the final factorization.
	Iterations int
	// W is the (sparsified) correlation-strength matrix over the training
	// exceptions — each row quantizes how much each root cause explains
	// that exception (Fig. 3(c) / Fig. 5(b)).
	W *mat.Dense
	// ExceptionIndices maps W's rows back into the input state slice.
	ExceptionIndices []int
}

// Train runs the full VN2 training pipeline on node states: exception
// extraction (Section IV-B), NMF compression (Algorithm 1), basis
// sparsification (Algorithm 2), rank selection when requested, and signed
// signature computation for interpretation.
func Train(states []trace.StateVector, cfg TrainConfig) (*Model, *TrainReport, error) {
	cfg = cfg.withDefaults()
	if len(states) == 0 {
		return nil, nil, ErrNoStates
	}

	det, err := trace.DetectExceptions(states, cfg.ExceptionThreshold)
	if err != nil {
		return nil, nil, fmt.Errorf("detect exceptions: %w", err)
	}
	report := &TrainReport{TotalStates: len(states)}

	var workingStates []trace.StateVector
	if cfg.CompressAllStates {
		workingStates = states
		report.ExceptionIndices = make([]int, len(states))
		for i := range states {
			report.ExceptionIndices[i] = i
		}
	} else {
		workingStates = det.Exceptions(states)
		report.ExceptionIndices = append([]int(nil), det.Indices...)
	}
	report.ExceptionStates = len(workingStates)
	if len(workingStates) == 0 {
		return nil, nil, fmt.Errorf("%w: no exceptions above threshold", ErrNoStates)
	}

	// Normalization for factorization uses the population spread over ALL
	// states (anomalies included) so every column lands on a comparable
	// scale; the detector's robust scale would explode quiet metrics whose
	// only variation is anomalous.
	scale := populationScale(states)
	e, err := statesMatrix(workingStates, scale)
	if err != nil {
		return nil, nil, fmt.Errorf("build matrix: %w", err)
	}

	rank := cfg.Rank
	if rank == 0 {
		rank, report.RankSweep, err = selectRank(e, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("select rank: %w", err)
		}
	}
	if max := minInt(e.Rows(), e.Cols()); rank > max {
		rank = max
	}
	report.SelectedRank = rank

	res, err := nmf.Factorize(e, nmf.Config{
		Rank:    rank,
		MaxIter: cfg.MaxIter,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("factorize: %w", err)
	}
	report.Iterations = res.Iterations
	if report.Accuracy, err = res.Accuracy(e); err != nil {
		return nil, nil, fmt.Errorf("accuracy: %w", err)
	}

	sparseW, err := nmf.Sparsify(res.W, cfg.Keep)
	if err != nil {
		return nil, nil, fmt.Errorf("sparsify: %w", err)
	}
	if report.SparseAccuracy, err = nmf.Accuracy(e, sparseW, res.Psi); err != nil {
		return nil, nil, fmt.Errorf("sparse accuracy: %w", err)
	}
	report.W = sparseW

	model := &Model{
		Psi:         res.Psi,
		Scale:       scale,
		MetricNames: metricNamesFor(e.Cols()),
		Rank:        rank,
		Keep:        cfg.Keep,
		TrainStates: len(workingStates),
	}
	model.Signatures = signedSignatures(workingStates, sparseW, scale)
	return model, report, nil
}

// populationScale is the per-metric population standard deviation over all
// states, floored so constant metrics stay harmless.
func populationScale(states []trace.StateVector) []float64 {
	m := len(states[0].Delta)
	mean := make([]float64, m)
	for _, s := range states {
		for k, v := range s.Delta {
			mean[k] += v
		}
	}
	for k := range mean {
		mean[k] /= float64(len(states))
	}
	scale := make([]float64, m)
	for _, s := range states {
		for k, v := range s.Delta {
			d := v - mean[k]
			scale[k] += d * d
		}
	}
	for k := range scale {
		scale[k] = math.Sqrt(scale[k] / float64(len(states)))
		if scale[k] < 1e-9 {
			scale[k] = 1e-9
		}
	}
	return scale
}

// selectRank runs the Fig. 3(b) sweep and applies the paper's criterion.
func selectRank(e *mat.Dense, cfg TrainConfig) (int, []nmf.RankPoint, error) {
	maxRank := minInt(minInt(e.Rows(), e.Cols()), cfg.SweepMax)
	minRank := minInt(cfg.SweepMin, maxRank)
	// Parallelism goes to the sweep points (independent factorizations,
	// the Fig. 3(b) fan-out); each point's factorization stays sequential
	// so cfg.Workers bounds the total goroutine count.
	points, err := nmf.SweepRanks(e, nmf.SweepConfig{
		MinRank: minRank,
		MaxRank: maxRank,
		Step:    cfg.SweepStep,
		Keep:    cfg.Keep,
		Workers: cfg.Workers,
		Base: nmf.Config{
			MaxIter: cfg.MaxIter,
			Seed:    cfg.Seed,
		},
	})
	if err != nil {
		return 0, nil, err
	}
	rank, err := nmf.SelectRank(points)
	if err != nil {
		return 0, nil, err
	}
	return rank, points, nil
}

// signedSignatures computes each root cause's signed metric profile: the
// W-weighted mean of the signed normalized training states, scaled so the
// largest magnitude per row is 1. This recovers the direction information
// the magnitude factorization discards, reproducing the Fig. 4 view.
func signedSignatures(states []trace.StateVector, w *mat.Dense, scale []float64) *mat.Dense {
	r := w.Cols()
	m := len(scale)
	sig := mat.MustNew(r, m)
	for j := 0; j < r; j++ {
		var totalWeight float64
		row := sig.RawRow(j)
		for i, s := range states {
			wij := w.At(i, j)
			if wij == 0 {
				continue
			}
			totalWeight += wij
			for k, v := range s.Delta {
				row[k] += wij * (v / scale[k])
			}
		}
		if totalWeight > 0 {
			maxAbs := 0.0
			for k := range row {
				row[k] /= totalWeight
				if a := math.Abs(row[k]); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs > 0 {
				for k := range row {
					row[k] /= maxAbs
				}
			}
		}
	}
	return sig
}

// metricNamesFor labels the columns: the canonical 43 names when M matches,
// generic labels otherwise (the library stays usable on other metric sets).
func metricNamesFor(m int) []string {
	if m == metricspec.MetricCount {
		return metricspec.Names()
	}
	out := make([]string, m)
	for i := range out {
		out[i] = fmt.Sprintf("metric_%d", i)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
