package vn2

import (
	"sort"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
)

// EpochDiagnosis is a network-level combination diagnosis: the aggregate
// view of one reporting epoch across all nodes — the "combination
// diagnosis" direction the paper lists as future work.
type EpochDiagnosis struct {
	// Epoch is the diagnosed reporting epoch.
	Epoch int `json:"epoch"`
	// States is how many node states contributed.
	States int `json:"states"`
	// Distribution is the per-cause total strength across the epoch.
	Distribution []float64 `json:"distribution"`
	// AffectedNodes lists, per cause, the nodes it was material for,
	// strongest first.
	AffectedNodes map[int][]packet.NodeID `json:"affected_nodes"`
	// Combination lists the causes active at network scale, strongest
	// first — the multi-cause picture of the whole epoch.
	Combination []RankedCause `json:"combination"`
}

// epochCombinationShare is the fraction of the strongest cause's strength
// a cause needs to be part of the epoch's combination.
const epochCombinationShare = 0.15

// DiagnoseEpochs groups states by epoch, diagnoses each, and produces one
// combination diagnosis per epoch, ascending.
func (m *Model) DiagnoseEpochs(states []trace.StateVector, cfg DiagnoseConfig) ([]*EpochDiagnosis, error) {
	if !m.trained() {
		return nil, ErrNotTrained
	}
	if len(states) == 0 {
		return nil, ErrNoStates
	}
	diags, err := m.DiagnoseBatch(states, cfg)
	if err != nil {
		return nil, err
	}
	byEpoch := make(map[int]*EpochDiagnosis)
	type nodeStrength struct {
		node     packet.NodeID
		strength float64
	}
	perCauseNodes := make(map[int]map[int][]nodeStrength) // epoch → cause → nodes
	for i, s := range states {
		ed := byEpoch[s.Epoch]
		if ed == nil {
			ed = &EpochDiagnosis{
				Epoch:         s.Epoch,
				Distribution:  make([]float64, m.Rank),
				AffectedNodes: make(map[int][]packet.NodeID),
			}
			byEpoch[s.Epoch] = ed
			perCauseNodes[s.Epoch] = make(map[int][]nodeStrength)
		}
		ed.States++
		for _, rc := range diags[i].Ranked {
			ed.Distribution[rc.Cause] += rc.Strength
			perCauseNodes[s.Epoch][rc.Cause] = append(perCauseNodes[s.Epoch][rc.Cause],
				nodeStrength{node: s.Node, strength: rc.Strength})
		}
	}
	out := make([]*EpochDiagnosis, 0, len(byEpoch))
	for epoch, ed := range byEpoch {
		// Build the network-scale combination.
		max := 0.0
		for _, v := range ed.Distribution {
			if v > max {
				max = v
			}
		}
		for j, v := range ed.Distribution {
			if max > 0 && v >= epochCombinationShare*max {
				ed.Combination = append(ed.Combination, RankedCause{Cause: j, Strength: v})
			}
		}
		sort.Slice(ed.Combination, func(a, b int) bool {
			return ed.Combination[a].Strength > ed.Combination[b].Strength
		})
		// Affected nodes per combination cause, strongest first.
		for _, rc := range ed.Combination {
			nodes := perCauseNodes[epoch][rc.Cause]
			sort.Slice(nodes, func(a, b int) bool { return nodes[a].strength > nodes[b].strength })
			for _, ns := range nodes {
				ed.AffectedNodes[rc.Cause] = append(ed.AffectedNodes[rc.Cause], ns.node)
			}
		}
		out = append(out, ed)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Epoch < out[b].Epoch })
	return out, nil
}
