package vn2

import (
	"fmt"

	"github.com/wsn-tools/vn2/internal/mat"
	"github.com/wsn-tools/vn2/internal/nmf"
	"github.com/wsn-tools/vn2/internal/trace"
)

// Update retrains the representative matrix incrementally from a fresh
// batch of states, warm-starting the factorization from the current Ψ —
// the long-lived-deployment workflow where yesterday's model seeds
// today's. The receiver is not modified; a new model is returned.
//
// The original normalization scale is kept so that diagnoses before and
// after the update remain comparable; rank and keep fraction carry over
// unless overridden in cfg.
func (m *Model) Update(states []trace.StateVector, cfg TrainConfig) (*Model, *TrainReport, error) {
	if !m.trained() {
		return nil, nil, ErrNotTrained
	}
	cfg = cfg.withDefaults()
	if len(states) == 0 {
		return nil, nil, ErrNoStates
	}

	det, err := trace.DetectExceptions(states, cfg.ExceptionThreshold)
	if err != nil {
		return nil, nil, fmt.Errorf("detect exceptions: %w", err)
	}
	report := &TrainReport{TotalStates: len(states)}
	var workingStates []trace.StateVector
	if cfg.CompressAllStates {
		workingStates = states
		report.ExceptionIndices = make([]int, len(states))
		for i := range states {
			report.ExceptionIndices[i] = i
		}
	} else {
		workingStates = det.Exceptions(states)
		report.ExceptionIndices = append([]int(nil), det.Indices...)
	}
	report.ExceptionStates = len(workingStates)
	if len(workingStates) == 0 {
		return nil, nil, fmt.Errorf("%w: no exceptions above threshold", ErrNoStates)
	}

	e, err := statesMatrix(workingStates, m.Scale)
	if err != nil {
		return nil, nil, fmt.Errorf("build matrix: %w", err)
	}
	rank := m.Rank
	if max := minInt(e.Rows(), e.Cols()); rank > max {
		return nil, nil, fmt.Errorf("%w: %d new exceptions cannot support rank %d",
			ErrNoStates, e.Rows(), rank)
	}
	report.SelectedRank = rank

	// Warm start: fresh per-state strengths, yesterday's basis.
	w0 := mat.MustNew(e.Rows(), rank)
	w0.Fill(1.0 / float64(rank))
	res, err := nmf.Resume(e, w0, m.Psi, nmf.Config{
		Rank:    rank,
		MaxIter: cfg.MaxIter,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("resume factorization: %w", err)
	}
	report.Iterations = res.Iterations
	if report.Accuracy, err = res.Accuracy(e); err != nil {
		return nil, nil, fmt.Errorf("accuracy: %w", err)
	}
	keep := m.Keep
	if cfg.Keep > 0 {
		keep = cfg.Keep
	}
	sparseW, err := nmf.Sparsify(res.W, keep)
	if err != nil {
		return nil, nil, fmt.Errorf("sparsify: %w", err)
	}
	if report.SparseAccuracy, err = nmf.Accuracy(e, sparseW, res.Psi); err != nil {
		return nil, nil, fmt.Errorf("sparse accuracy: %w", err)
	}
	report.W = sparseW

	updated := &Model{
		Psi:         res.Psi,
		Scale:       append([]float64(nil), m.Scale...),
		MetricNames: append([]string(nil), m.MetricNames...),
		Rank:        rank,
		Keep:        keep,
		TrainStates: len(workingStates),
	}
	updated.Signatures = signedSignatures(workingStates, sparseW, updated.Scale)
	return updated, report, nil
}
