package vn2

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/wsn-tools/vn2/internal/metricspec"
)

// MetricContribution is one metric's role in a root-cause vector.
type MetricContribution struct {
	// Metric indexes the state vector; Name is its label.
	Metric int    `json:"metric"`
	Name   string `json:"name"`
	// Weight is the non-negative basis weight (Ψ row entry).
	Weight float64 `json:"weight"`
	// Signed is the [-1,1] signature value: direction and relative size of
	// the metric's variation under this root cause.
	Signed float64 `json:"signed"`
}

// Category groups root causes the way Fig. 4 does.
type Category int

const (
	// CategoryPhysical — dominated by C1 sensor metrics (environment,
	// voltage): reboots, energy events, environmental change.
	CategoryPhysical Category = iota + 1
	// CategoryLink — dominated by per-neighbor RSSI/ETX metrics: link
	// quality and dynamics.
	CategoryLink
	// CategoryProtocol — dominated by C3 counters: loops, contention,
	// retransmission storms, queue overflow.
	CategoryProtocol
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryPhysical:
		return "physical"
	case CategoryLink:
		return "link"
	case CategoryProtocol:
		return "protocol"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Explanation interprets one root-cause vector (Problem 2).
type Explanation struct {
	// Cause is the root-cause index.
	Cause int `json:"cause"`
	// Label is the expert label attached to the cause, when one exists.
	Label string `json:"label,omitempty"`
	// Top lists the strongest metric contributions, descending.
	Top []MetricContribution `json:"top"`
	// Category classifies the vector per its dominant metrics.
	Category Category `json:"category"`
	// Hazards collects the Table I catalog entries matching the top
	// metrics, when the model uses the canonical 43-metric set.
	Hazards []metricspec.Hazard `json:"hazards"`
}

// Explain interprets root cause j via its strongest topK metrics, their
// Table I hazards, and a Fig. 4-style category.
func (m *Model) Explain(j, topK int) (*Explanation, error) {
	if !m.trained() {
		return nil, ErrNotTrained
	}
	if j < 0 || j >= m.Rank {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadCause, j, m.Rank)
	}
	if topK <= 0 {
		topK = 5
	}
	row := m.Psi.Row(j)
	var signed []float64
	if m.Signatures != nil {
		signed = m.Signatures.Row(j)
	} else {
		signed = make([]float64, len(row))
	}

	contribs := make([]MetricContribution, len(row))
	for k, w := range row {
		contribs[k] = MetricContribution{
			Metric: k,
			Name:   m.MetricNames[k],
			Weight: w,
			Signed: signed[k],
		}
	}
	sort.Slice(contribs, func(a, b int) bool {
		if contribs[a].Weight != contribs[b].Weight {
			return contribs[a].Weight > contribs[b].Weight
		}
		return contribs[a].Metric < contribs[b].Metric
	})
	if topK > len(contribs) {
		topK = len(contribs)
	}
	exp := &Explanation{Cause: j, Label: m.Label(j), Top: contribs[:topK]}
	exp.Category = categorize(exp.Top)
	if len(m.MetricNames) == metricspec.MetricCount {
		seen := make(map[metricspec.ID]bool)
		for _, c := range exp.Top {
			id := metricspec.ID(c.Metric)
			if seen[id] {
				continue
			}
			seen[id] = true
			exp.Hazards = append(exp.Hazards, metricspec.HazardsFor(id)...)
		}
	}
	return exp, nil
}

// categorize votes each top metric's packet class, weighted by its basis
// weight, matching Fig. 4's three groups.
func categorize(top []MetricContribution) Category {
	var physical, link, protocol float64
	for _, c := range top {
		sp, err := metricspec.Lookup(metricspec.ID(c.Metric))
		if err != nil {
			continue
		}
		switch sp.Packet {
		case metricspec.PacketC1:
			physical += c.Weight
		case metricspec.PacketC2:
			link += c.Weight
		case metricspec.PacketC3:
			protocol += c.Weight
		}
	}
	switch {
	case link >= physical && link >= protocol:
		return CategoryLink
	case protocol >= physical:
		return CategoryProtocol
	default:
		return CategoryPhysical
	}
}

// Summary renders a one-line human-readable interpretation.
func (e *Explanation) Summary() string {
	var parts []string
	for _, c := range e.Top {
		if c.Weight <= 0 {
			continue
		}
		dir := "+"
		if c.Signed < 0 {
			dir = "-"
		}
		parts = append(parts, fmt.Sprintf("%s%s(%.2f)", dir, c.Name, math.Abs(c.Signed)))
		if len(parts) == 3 {
			break
		}
	}
	name := fmt.Sprintf("cause %d", e.Cause)
	if e.Label != "" {
		name = fmt.Sprintf("cause %d %q", e.Cause, e.Label)
	}
	return fmt.Sprintf("%s [%s]: %s", name, e.Category, strings.Join(parts, " "))
}
