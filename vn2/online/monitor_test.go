package online

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/wsn-tools/vn2/internal/metricspec"
	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
)

// synthStates mirrors the vn2 package's training fixture: calm background
// with planted contention / loop / reboot archetypes.
func synthStates(n int, seed int64) []trace.StateVector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]trace.StateVector, 0, n)
	for i := 0; i < n; i++ {
		delta := make([]float64, metricspec.MetricCount)
		for k := range delta {
			delta[k] = rng.NormFloat64() * 0.2
		}
		switch {
		case i%300 == 0:
			delta[metricspec.NOACKRetransmitCounter] += 300 + rng.Float64()*60
			delta[metricspec.MacBackoffCounter] += 200 + rng.Float64()*40
		case i%300 == 1:
			delta[metricspec.LoopCounter] += 40 + rng.Float64()*10
			delta[metricspec.DuplicateCounter] += 120 + rng.Float64()*30
			delta[metricspec.TransmitCounter] += 400 + rng.Float64()*80
		}
		out = append(out, trace.StateVector{
			Node:  packet.NodeID(1 + i%10),
			Epoch: 2 + i/10,
			Gap:   1,
			Delta: delta,
		})
	}
	return out
}

// testRig trains a model, freezes a detector, and hands back both plus a
// calm baseline vector and a delta that the detector reliably flags.
type testRig struct {
	model    *vn2.Model
	det      *trace.Detector
	baseline []float64
	hotDelta []float64
}

var (
	rigOnce sync.Once
	rig     testRig
	rigErr  error
)

func newRig(t *testing.T) testRig {
	t.Helper()
	rigOnce.Do(func() {
		states := synthStates(1500, 42)
		model, _, err := vn2.Train(states, vn2.TrainConfig{Rank: 4, Seed: 1})
		if err != nil {
			rigErr = err
			return
		}
		det, err := trace.NewDetector(states, 0)
		if err != nil {
			rigErr = err
			return
		}
		hot := make([]float64, metricspec.MetricCount)
		hot[metricspec.NOACKRetransmitCounter] = 320
		hot[metricspec.MacBackoffCounter] = 210
		if ex, _, err := det.Exceptional(hot); err != nil || !ex {
			rigErr = errors.New("fixture hot delta is not exceptional")
			return
		}
		rig = testRig{
			model:    model,
			det:      det,
			baseline: make([]float64, metricspec.MetricCount),
			hotDelta: hot,
		}
	})
	if rigErr != nil {
		t.Fatalf("rig: %v", rigErr)
	}
	return rig
}

// calm reports carry the flat baseline: consecutive calm reports derive a
// zero delta (normal). hot reports carry baseline + epoch·hotDelta, so a hot
// report following a hot report still derives exactly one hotDelta — the
// counters keep climbing, as a real contention storm's would.
func (r testRig) calm(node packet.NodeID, epoch int) trace.Record {
	v := make([]float64, len(r.baseline))
	copy(v, r.baseline)
	return trace.Record{Node: node, Epoch: epoch, Vector: v}
}

func (r testRig) hot(node packet.NodeID, epoch int) trace.Record {
	v := make([]float64, len(r.baseline))
	copy(v, r.baseline)
	for k, d := range r.hotDelta {
		v[k] += float64(epoch) * d
	}
	return trace.Record{Node: node, Epoch: epoch, Vector: v}
}

func newTestMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	r := newRig(t)
	if cfg.Model == nil {
		cfg.Model = r.model
	}
	if cfg.Detector == nil {
		cfg.Detector = r.det
	}
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	return m
}

func TestNewMonitorValidation(t *testing.T) {
	r := newRig(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil model", Config{Detector: r.det}},
		{"nil detector", Config{Model: r.model}},
		{"invalid detector", Config{Model: r.model, Detector: &trace.Detector{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMonitor(tc.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestIngestLifecycle(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})

	// First report: no state derivable.
	obs, err := m.Ingest(r.calm(1, 10))
	if err != nil || !obs.First {
		t.Fatalf("first report: obs=%+v err=%v", obs, err)
	}
	// Exact retransmission: absorbed silently, not an error.
	obs, err = m.Ingest(r.calm(1, 10))
	if err != nil || !obs.Duplicate {
		t.Fatalf("exact duplicate: obs=%+v err=%v, want benign dedup", obs, err)
	}
	// Same epoch with a different vector is a conflict, not a duplicate.
	conflict := r.calm(1, 10)
	conflict.Vector[0] += 1
	if _, err := m.Ingest(conflict); !errors.Is(err, ErrStaleReport) {
		t.Fatalf("conflicting epoch err = %v, want ErrStaleReport", err)
	}
	// Calm consecutive report: normal, gap 1.
	obs, err = m.Ingest(r.calm(1, 11))
	if err != nil || obs.First || obs.Flagged || obs.Gap != 1 {
		t.Fatalf("calm report: obs=%+v err=%v", obs, err)
	}
	// Report across a gap: gap tracked, still a valid state.
	obs, err = m.Ingest(r.calm(1, 15))
	if err != nil || obs.Gap != 4 {
		t.Fatalf("gap report: obs=%+v err=%v", obs, err)
	}
	// Hot report: flagged and queued.
	obs, err = m.Ingest(r.hot(1, 16))
	if err != nil || !obs.Flagged || obs.Score <= 0 {
		t.Fatalf("hot report: obs=%+v err=%v", obs, err)
	}
	if m.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", m.Pending())
	}
	// Malformed vector.
	if _, err := m.Ingest(trace.Record{Node: 2, Epoch: 1, Vector: []float64{1}}); !errors.Is(err, trace.ErrVectorLength) {
		t.Fatalf("short vector err = %v", err)
	}

	st := m.Stats()
	if st.Reports != 7 || st.FirstReports != 1 || st.Stale != 1 || st.Duplicates != 1 || st.Invalid != 1 ||
		st.Normal != 2 || st.Flagged != 1 || st.GapReports != 1 || st.MaxGap != 4 || st.LastEpoch != 16 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWarmPrimesDiffSlot(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})
	if err := m.Warm(r.calm(3, 20)); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	// Warming again with an older epoch is stale.
	if err := m.Warm(r.calm(3, 20)); !errors.Is(err, ErrStaleReport) {
		t.Fatalf("stale warm err = %v", err)
	}
	// The first live report diffs against the warmed slot — not First.
	obs, err := m.Ingest(r.hot(3, 21))
	if err != nil || obs.First || !obs.Flagged {
		t.Fatalf("post-warm ingest: obs=%+v err=%v", obs, err)
	}
	if err := m.Warm(trace.Record{Node: 4, Epoch: 1, Vector: []float64{1}}); !errors.Is(err, trace.ErrVectorLength) {
		t.Fatalf("short warm err = %v", err)
	}
}

func TestDrainDiagnosesAndAggregates(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{Workers: 2})
	for node := packet.NodeID(1); node <= 5; node++ {
		if err := m.Warm(r.calm(node, 30)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Ingest(r.hot(node, 31)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := m.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(out) != 5 {
		t.Fatalf("drained %d states, want 5", len(out))
	}
	for i, f := range out {
		if f.Diagnosis == nil {
			t.Fatalf("state %d has nil diagnosis", i)
		}
		if f.State.Node != packet.NodeID(i+1) {
			t.Errorf("state %d from node %d, want ingest order", i, f.State.Node)
		}
		if len(f.Diagnosis.Ranked) == 0 {
			t.Errorf("state %d: contention archetype produced no ranked causes", i)
		}
	}
	// Empty drain is a no-op.
	if out, err := m.Drain(); err != nil || out != nil {
		t.Fatalf("empty drain: out=%v err=%v", out, err)
	}

	sum := m.Snapshot()
	if sum.Pending != 0 || sum.Rank != r.model.Rank {
		t.Errorf("summary pending=%d rank=%d", sum.Pending, sum.Rank)
	}
	if len(sum.Epochs) != 1 || sum.Epochs[0].Epoch != 31 || sum.Epochs[0].States != 5 {
		t.Fatalf("epochs = %+v", sum.Epochs)
	}
	var total float64
	for _, v := range sum.Epochs[0].Distribution {
		total += v
	}
	if total <= 0 {
		t.Error("epoch distribution is all zero")
	}
	if len(sum.Recent) != 5 {
		t.Errorf("recent = %d, want 5", len(sum.Recent))
	}
	if st := m.Stats(); st.Diagnosed != 5 || st.Drains != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBacklogBoundAndDrop(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{MaxPending: 2})
	if err := m.Warm(r.calm(1, 1)); err != nil {
		t.Fatal(err)
	}
	for e := 2; e <= 3; e++ {
		if _, err := m.Ingest(r.hot(1, e)); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	obs, err := m.Ingest(r.hot(1, 4))
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("backlog err = %v, want ErrBacklog", err)
	}
	if !obs.Flagged {
		t.Error("dropped state should still be observed as flagged")
	}
	if st := m.Stats(); st.Dropped != 1 || st.Flagged != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Draining frees the backlog; ingest works again.
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(r.hot(1, 5)); err != nil {
		t.Fatalf("post-drain ingest: %v", err)
	}
}

func TestHistoryPruningAndRecentRing(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{History: 4, MaxRecent: 3})
	if err := m.Warm(r.calm(1, 0)); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 10; e++ {
		if _, err := m.Ingest(r.hot(1, e)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	sum := m.Snapshot()
	// Epochs ≤ 10-4 = 6 are pruned: 7..10 remain, ascending.
	if len(sum.Epochs) != 4 {
		t.Fatalf("epochs kept = %d, want 4 (%+v)", len(sum.Epochs), sum.Epochs)
	}
	for i, ec := range sum.Epochs {
		if ec.Epoch != 7+i {
			t.Errorf("epoch[%d] = %d, want %d", i, ec.Epoch, 7+i)
		}
	}
	if len(sum.Recent) != 3 {
		t.Fatalf("recent = %d, want 3", len(sum.Recent))
	}
	// Ring keeps the newest, oldest first.
	for i, f := range sum.Recent {
		if f.State.Epoch != 8+i {
			t.Errorf("recent[%d] epoch = %d, want %d", i, f.State.Epoch, 8+i)
		}
	}
}

// TestConcurrentIngestDrainSnapshot is the race-gate test: many goroutines
// ingesting distinct nodes while drains and snapshots run concurrently.
// Run under -race via `make race`.
func TestConcurrentIngestDrainSnapshot(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{Workers: 2, MaxPending: 100000})
	const (
		nodes  = 8
		epochs = 60
	)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		node := packet.NodeID(n + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 1; e <= epochs; e++ {
				var rec trace.Record
				if e%5 == 0 {
					rec = r.hot(node, e)
				} else {
					rec = r.calm(node, e)
				}
				if _, err := m.Ingest(rec); err != nil {
					t.Errorf("node %d epoch %d: %v", node, e, err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	var drainWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := m.Drain(); err != nil {
					t.Errorf("drain: %v", err)
					return
				}
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(done)
	drainWG.Wait()
	// Final drain picks up stragglers.
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// Every hot report derives a hot delta (and the calm report after a hot
	// one derives the equally exceptional recovery delta), so at minimum the
	// hot epochs are flagged — the exact recovery count is not asserted.
	if min := uint64(nodes * (epochs / 5)); st.Flagged < min {
		t.Errorf("flagged = %d, want ≥ %d", st.Flagged, min)
	}
	if st.Diagnosed != st.Flagged || st.Dropped != 0 {
		t.Errorf("diagnosed=%d flagged=%d dropped=%d", st.Diagnosed, st.Flagged, st.Dropped)
	}
	if st.Reports != nodes*epochs {
		t.Errorf("reports = %d, want %d", st.Reports, nodes*epochs)
	}
}
