// Package online turns the batch VN2 pipeline into a streaming sink-side
// monitor: per-node reports are ingested one at a time, first-differenced
// against the node's previous report into state vectors, screened by a
// frozen trace.Detector in O(M), and the flagged states are diagnosed in
// parallel batches against the trained model — the "new network state
// coming up" loop of the paper, without re-running batch detection over a
// growing window.
//
// The split between Ingest (cheap, per report) and Drain (batched NNLS over
// everything flagged since the last drain) is what makes the monitor
// servable: a sink can ingest at line rate and amortize the solver over
// periodic drains.
package online

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
)

// Errors returned by the monitor.
var (
	// ErrStaleReport reports a record whose epoch is not after the node's
	// last ingested report.
	ErrStaleReport = errors.New("online: report epoch not after previous report")
	// ErrBacklog reports that the flagged-state buffer is full; the state
	// was dropped and the caller should drain (or shed load).
	ErrBacklog = errors.New("online: flagged-state backlog full")
	// ErrBadConfig reports an unusable monitor configuration.
	ErrBadConfig = errors.New("online: bad monitor configuration")
	// ErrNonFinite reports a record carrying NaN or ±Inf metric values;
	// such reports are rejected at the boundary before they can poison a
	// state vector.
	ErrNonFinite = errors.New("online: non-finite metric value")
	// ErrBadState reports an unusable MonitorState passed to Restore.
	ErrBadState = errors.New("online: bad monitor state")
)

// Note on duplicates: an exact duplicate of the node's last report (same
// epoch, bit-identical vector — what a retransmitting measurement channel
// produces) is deduplicated silently: Ingest returns a nil error with
// Observation.Duplicate set and counts it in Stats.Duplicates. A same-epoch
// report with a DIFFERENT vector is a conflict and stays ErrStaleReport.

// Config assembles a Monitor.
type Config struct {
	// Model is the trained representative matrix used to diagnose flagged
	// states. Required.
	Model *vn2.Model
	// Detector is the frozen exception detector that screens incoming
	// states. Required; its metric count must match the model's.
	Detector *trace.Detector
	// History bounds the rolling per-epoch cause-distribution window, in
	// epochs. Epochs older than the newest seen epoch minus History are
	// pruned. Defaults to 64.
	History int
	// MaxPending bounds flagged states awaiting diagnosis; an Ingest that
	// flags a state while the buffer is full drops it and returns
	// ErrBacklog. Defaults to 4096.
	MaxPending int
	// MaxRecent bounds the kept ring of most recent diagnosed states (the
	// serve path's /diagnosis detail view). Defaults to 128.
	MaxRecent int
	// Workers bounds the goroutines of each drain's batched NNLS solve
	// (nnls.SolveBatchParallel underneath): 0 uses all cores, otherwise as
	// vn2.DiagnoseConfig.Workers. Results are identical for any value.
	Workers int
	// MinStrength is passed through to diagnosis ranking; ≤0 uses the
	// vn2 default.
	MinStrength float64
}

func (c Config) withDefaults() Config {
	if c.History == 0 {
		c.History = 64
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4096
	}
	if c.MaxRecent == 0 {
		c.MaxRecent = 128
	}
	if c.Workers == 0 {
		c.Workers = -1
	}
	return c
}

// Observation is the outcome of ingesting one report.
type Observation struct {
	Node  packet.NodeID `json:"node"`
	Epoch int           `json:"epoch"`
	// First marks a node's first report: no state can be derived yet.
	First bool `json:"first,omitempty"`
	// Duplicate marks an exact retransmission of the node's last report,
	// absorbed without deriving a state.
	Duplicate bool `json:"duplicate,omitempty"`
	// Gap is the epochs since the node's previous report (1 = consecutive);
	// 0 on a first report.
	Gap int `json:"gap,omitempty"`
	// Score is the normalized deviation ε/RefMax of the derived state.
	Score float64 `json:"score"`
	// Flagged marks the state as an exception awaiting diagnosis.
	Flagged bool `json:"flagged,omitempty"`
}

// Flagged is one exception state with its diagnosis, produced by Drain.
type Flagged struct {
	State trace.StateVector `json:"state"`
	// Score is the detector's normalized deviation that flagged the state.
	Score float64 `json:"score"`
	// Diagnosis is the NNLS projection onto the model's root causes.
	Diagnosis *vn2.Diagnosis `json:"diagnosis"`
}

// EpochCauses is the rolling per-epoch root-cause distribution.
type EpochCauses struct {
	Epoch int `json:"epoch"`
	// States is how many flagged states of this epoch were diagnosed.
	States int `json:"states"`
	// Distribution is the per-cause total strength (length Rank).
	Distribution []float64 `json:"distribution"`
}

// Stats counts what the monitor has seen.
type Stats struct {
	// Reports is every record offered to Ingest (including rejects).
	Reports uint64 `json:"reports"`
	// FirstReports is how many were a node's first (no state derived).
	FirstReports uint64 `json:"first_reports"`
	// Warmed counts records primed through Warm.
	Warmed uint64 `json:"warmed"`
	// Stale counts rejected out-of-order records.
	Stale uint64 `json:"stale"`
	// Duplicates counts exact retransmissions absorbed by dedup.
	Duplicates uint64 `json:"duplicates"`
	// Invalid counts rejected malformed records (wrong length, NaN/±Inf).
	Invalid uint64 `json:"invalid"`
	// Normal and Flagged partition the derived states by the detector.
	Normal  uint64 `json:"normal"`
	Flagged uint64 `json:"flagged"`
	// Dropped counts flagged states shed because the backlog was full.
	Dropped uint64 `json:"dropped"`
	// Diagnosed counts flagged states that went through a drain.
	Diagnosed uint64 `json:"diagnosed"`
	// Drains counts non-empty Drain calls.
	Drains uint64 `json:"drains"`
	// GapReports counts states derived across a reporting gap (Gap > 1) —
	// the sink-side trace of lost reports.
	GapReports uint64 `json:"gap_reports"`
	// MaxGap is the largest reporting gap seen.
	MaxGap int `json:"max_gap"`
	// LastEpoch is the newest epoch seen across all nodes.
	LastEpoch int `json:"last_epoch"`
}

// Summary is a consistent snapshot of the monitor's rolling state.
type Summary struct {
	Stats Stats `json:"stats"`
	// Pending is the flagged-state backlog length right now.
	Pending int `json:"pending"`
	// Rank is the model's root-cause count (Distribution length).
	Rank int `json:"rank"`
	// Epochs holds the rolling per-epoch cause distributions, ascending.
	Epochs []EpochCauses `json:"epochs"`
	// Recent holds the most recently diagnosed states, oldest first.
	Recent []Flagged `json:"recent"`
}

type lastReport struct {
	epoch  int
	vector []float64
}

type pendingState struct {
	state trace.StateVector
	score float64
}

// epochAcc keeps one epoch's diagnosed contributions per node rather than a
// pre-summed distribution. Summing happens at Snapshot time in ascending
// node order, so the per-epoch distribution is a pure function of the SET of
// diagnosed states — bit-identical no matter how drains grouped them, which
// is what lets a crash-recovered monitor reproduce the fault-free run
// exactly (see DESIGN.md "Failure model & recovery").
type epochAcc struct {
	epoch    int
	contribs []Contribution
}

// Monitor is the streaming sink service core. All methods are safe for
// concurrent use; Ingest stays O(M) per report and Drain batches the
// expensive NNLS solves.
type Monitor struct {
	cfg   Config
	model *vn2.Model
	det   *trace.Detector

	mu      sync.Mutex
	last    map[packet.NodeID]lastReport
	pending []pendingState
	epochs  map[int]*epochAcc
	recent  []Flagged
	stats   Stats

	// drainMu serializes drains so two concurrent Drain calls cannot
	// interleave their merges (ingest keeps flowing meanwhile: the solve
	// runs outside mu).
	drainMu sync.Mutex
}

// NewMonitor validates the configuration and returns a ready monitor.
func NewMonitor(cfg Config) (*Monitor, error) {
	c := cfg.withDefaults()
	if c.Model == nil || c.Model.Metrics() == 0 || c.Model.Rank <= 0 {
		return nil, fmt.Errorf("%w: model missing or untrained", ErrBadConfig)
	}
	if !c.Detector.Valid() {
		return nil, fmt.Errorf("%w: detector missing or uncalibrated", ErrBadConfig)
	}
	if c.Detector.Metrics() != c.Model.Metrics() {
		return nil, fmt.Errorf("%w: detector has %d metrics, model %d",
			ErrBadConfig, c.Detector.Metrics(), c.Model.Metrics())
	}
	return &Monitor{
		cfg:    c,
		model:  c.Model,
		det:    c.Detector,
		last:   make(map[packet.NodeID]lastReport),
		epochs: make(map[int]*epochAcc),
	}, nil
}

// Warm primes a node's last-report slot without scoring anything — used to
// seed the monitor from the tail of a calibration trace so the first live
// report already produces a state vector.
func (m *Monitor) Warm(rec trace.Record) error {
	if len(rec.Vector) != m.det.Metrics() {
		return fmt.Errorf("%w: got %d metrics, want %d", trace.ErrVectorLength, len(rec.Vector), m.det.Metrics())
	}
	if k := firstNonFinite(rec.Vector); k >= 0 {
		return fmt.Errorf("%w: metric %d", ErrNonFinite, k)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if lr, ok := m.last[rec.Node]; ok && rec.Epoch <= lr.epoch {
		m.stats.Stale++
		return fmt.Errorf("%w: node %d epoch %d ≤ %d", ErrStaleReport, rec.Node, rec.Epoch, lr.epoch)
	}
	m.storeLast(rec)
	m.stats.Warmed++
	return nil
}

// storeLast copies rec's vector into the node's slot, reusing the previous
// buffer so steady-state ingest does not allocate per report. Caller holds mu.
func (m *Monitor) storeLast(rec trace.Record) {
	lr := m.last[rec.Node]
	if lr.vector == nil {
		lr.vector = make([]float64, len(rec.Vector))
	}
	copy(lr.vector, rec.Vector)
	lr.epoch = rec.Epoch
	m.last[rec.Node] = lr
	if rec.Epoch > m.stats.LastEpoch {
		m.stats.LastEpoch = rec.Epoch
	}
}

// Ingest feeds one sink report through the online pipeline: diff against
// the node's previous report, score with the frozen detector, and queue the
// state for diagnosis when it is exceptional. The returned Observation
// reports what happened even when an error (stale report, full backlog) is
// returned alongside it.
func (m *Monitor) Ingest(rec trace.Record) (Observation, error) {
	obs := Observation{Node: rec.Node, Epoch: rec.Epoch}
	if len(rec.Vector) != m.det.Metrics() {
		m.mu.Lock()
		m.stats.Reports++
		m.stats.Invalid++
		m.mu.Unlock()
		return obs, fmt.Errorf("%w: got %d metrics, want %d", trace.ErrVectorLength, len(rec.Vector), m.det.Metrics())
	}
	if k := firstNonFinite(rec.Vector); k >= 0 {
		m.mu.Lock()
		m.stats.Reports++
		m.stats.Invalid++
		m.mu.Unlock()
		return obs, fmt.Errorf("%w: node %d epoch %d metric %d", ErrNonFinite, rec.Node, rec.Epoch, k)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Reports++
	lr, ok := m.last[rec.Node]
	if ok && rec.Epoch == lr.epoch && equalVectors(rec.Vector, lr.vector) {
		// Exact retransmission: absorb it instead of first-differencing it
		// into a spurious zero state or bouncing it back as an error.
		m.stats.Duplicates++
		obs.Duplicate = true
		return obs, nil
	}
	if ok && rec.Epoch <= lr.epoch {
		m.stats.Stale++
		return obs, fmt.Errorf("%w: node %d epoch %d ≤ %d", ErrStaleReport, rec.Node, rec.Epoch, lr.epoch)
	}
	if !ok {
		m.storeLast(rec)
		m.stats.FirstReports++
		obs.First = true
		return obs, nil
	}

	gap := rec.Epoch - lr.epoch
	delta := make([]float64, len(rec.Vector))
	for k, v := range rec.Vector {
		delta[k] = v - lr.vector[k]
	}
	m.storeLast(rec)
	obs.Gap = gap
	if gap > 1 {
		m.stats.GapReports++
	}
	if gap > m.stats.MaxGap {
		m.stats.MaxGap = gap
	}

	flagged, score, err := m.det.Exceptional(delta)
	if err != nil {
		// Length was validated above; this is unreachable, but keep the
		// accounting honest if the detector ever grows new failure modes.
		m.stats.Invalid++
		return obs, err
	}
	obs.Score = score
	if !flagged {
		m.stats.Normal++
		return obs, nil
	}
	obs.Flagged = true
	m.stats.Flagged++
	if len(m.pending) >= m.cfg.MaxPending {
		m.stats.Dropped++
		return obs, fmt.Errorf("%w: %d states pending", ErrBacklog, len(m.pending))
	}
	m.pending = append(m.pending, pendingState{
		state: trace.StateVector{Node: rec.Node, Epoch: rec.Epoch, Gap: gap, Delta: delta},
		score: score,
	})
	return obs, nil
}

// Drain diagnoses everything flagged since the last drain in one parallel
// NNLS batch (nnls.SolveBatchParallel underneath) and folds the results
// into the rolling per-epoch cause distributions. Ingest keeps flowing
// while the solve runs. Returns the diagnosed states in ingest order; a nil
// slice means there was nothing pending.
func (m *Monitor) Drain() ([]Flagged, error) {
	m.drainMu.Lock()
	defer m.drainMu.Unlock()

	m.mu.Lock()
	pend := m.pending
	m.pending = nil
	m.mu.Unlock()
	if len(pend) == 0 {
		return nil, nil
	}

	states := make([]trace.StateVector, len(pend))
	for i, p := range pend {
		states[i] = p.state
	}
	diags, err := m.model.DiagnoseBatch(states, vn2.DiagnoseConfig{
		Workers:     m.cfg.Workers,
		MinStrength: m.cfg.MinStrength,
	})
	if err != nil {
		// Put the batch back so nothing is lost; newer flagged states queued
		// during the solve stay behind it in order.
		m.mu.Lock()
		m.pending = append(pend, m.pending...)
		m.mu.Unlock()
		return nil, fmt.Errorf("drain: %w", err)
	}

	out := make([]Flagged, len(pend))
	for i, p := range pend {
		out[i] = Flagged{State: p.state, Score: p.score, Diagnosis: diags[i]}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Drains++
	m.stats.Diagnosed += uint64(len(out))
	for _, f := range out {
		ec := m.epochs[f.State.Epoch]
		if ec == nil {
			ec = &epochAcc{epoch: f.State.Epoch}
			m.epochs[f.State.Epoch] = ec
		}
		ec.contribs = append(ec.contribs, Contribution{
			Node:   f.State.Node,
			Causes: append([]vn2.RankedCause(nil), f.Diagnosis.Ranked...),
		})
	}
	m.recent = append(m.recent, out...)
	if over := len(m.recent) - m.cfg.MaxRecent; over > 0 {
		m.recent = append(m.recent[:0], m.recent[over:]...)
	}
	// Prune epochs that fell out of the rolling window.
	floor := m.stats.LastEpoch - m.cfg.History
	for e := range m.epochs {
		if e <= floor {
			delete(m.epochs, e)
		}
	}
	return out, nil
}

// Snapshot returns a consistent copy of the rolling state: counters, the
// per-epoch cause distributions (ascending) and the recent diagnoses.
func (m *Monitor) Snapshot() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{
		Stats:   m.stats,
		Pending: len(m.pending),
		Rank:    m.model.Rank,
		Epochs:  make([]EpochCauses, 0, len(m.epochs)),
		Recent:  append([]Flagged(nil), m.recent...),
	}
	for _, ec := range m.epochs {
		s.Epochs = append(s.Epochs, ec.causes(m.model.Rank))
	}
	sort.Slice(s.Epochs, func(i, j int) bool { return s.Epochs[i].Epoch < s.Epochs[j].Epoch })
	return s
}

// causes sums an epoch's contributions into its cause distribution, in
// ascending node order so the result does not depend on drain grouping.
// Caller holds mu.
func (ec *epochAcc) causes(rank int) EpochCauses {
	sorted := append([]Contribution(nil), ec.contribs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	out := EpochCauses{Epoch: ec.epoch, States: len(sorted), Distribution: make([]float64, rank)}
	for _, c := range sorted {
		for _, rc := range c.Causes {
			if rc.Cause >= 0 && rc.Cause < rank {
				out.Distribution[rc.Cause] += rc.Strength
			}
		}
	}
	return out
}

// firstNonFinite returns the index of the first NaN/±Inf value, or -1.
func firstNonFinite(v []float64) int {
	for k, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return k
		}
	}
	return -1
}

// equalVectors reports bit-exact equality (NaNs never reach here; records
// are sanitized first).
func equalVectors(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Stats returns a copy of the counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Pending returns the flagged-state backlog length.
func (m *Monitor) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}
