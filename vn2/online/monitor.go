// Package online turns the batch VN2 pipeline into a streaming sink-side
// monitor: per-node reports are ingested one at a time, first-differenced
// against the node's previous report into state vectors, screened by a
// frozen trace.Detector in O(M), and the flagged states are diagnosed in
// parallel batches against the trained model — the "new network state
// coming up" loop of the paper, without re-running batch detection over a
// growing window.
//
// The split between Ingest (cheap, per report) and Drain (batched NNLS over
// everything flagged since the last drain) is what makes the monitor
// servable: a sink can ingest at line rate and amortize the solver over
// periodic drains.
package online

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
)

// Errors returned by the monitor.
var (
	// ErrStaleReport reports a record whose epoch is not after the node's
	// last ingested report.
	ErrStaleReport = errors.New("online: report epoch not after previous report")
	// ErrBacklog reports that the flagged-state buffer is full; the state
	// was dropped and the caller should drain (or shed load).
	ErrBacklog = errors.New("online: flagged-state backlog full")
	// ErrBadConfig reports an unusable monitor configuration.
	ErrBadConfig = errors.New("online: bad monitor configuration")
	// ErrNonFinite reports a record carrying NaN or ±Inf metric values;
	// such reports are rejected at the boundary before they can poison a
	// state vector.
	ErrNonFinite = errors.New("online: non-finite metric value")
	// ErrBadState reports an unusable MonitorState passed to Restore.
	ErrBadState = errors.New("online: bad monitor state")
)

// Note on duplicates: an exact duplicate of the node's last report (same
// epoch, bit-identical vector — what a retransmitting measurement channel
// produces) is deduplicated silently: Ingest returns a nil error with
// Observation.Duplicate set and counts it in Stats.Duplicates. A same-epoch
// report with a DIFFERENT vector is a conflict and stays ErrStaleReport.

// Config assembles a Monitor.
type Config struct {
	// Model is the trained representative matrix used to diagnose flagged
	// states. Required.
	Model *vn2.Model
	// Detector is the frozen exception detector that screens incoming
	// states. Required; its metric count must match the model's.
	Detector *trace.Detector
	// History bounds the rolling per-epoch cause-distribution window, in
	// epochs. Epochs older than the newest seen epoch minus History are
	// pruned. Defaults to 64.
	History int
	// MaxPending bounds flagged states awaiting diagnosis; an Ingest that
	// flags a state while the buffer is full drops it and returns
	// ErrBacklog. Defaults to 4096.
	MaxPending int
	// MaxRecent bounds the kept ring of most recent diagnosed states (the
	// serve path's /diagnosis detail view). Defaults to 128.
	MaxRecent int
	// Workers bounds the goroutines of each drain's batched NNLS solve
	// (nnls.SolveBatchParallel underneath): 0 uses all cores, otherwise as
	// vn2.DiagnoseConfig.Workers. Results are identical for any value.
	Workers int
	// MinStrength is passed through to diagnosis ranking; ≤0 uses the
	// vn2 default.
	MinStrength float64
	// ResidualThreshold is the relative-residual cutoff above which a
	// diagnosed exception counts as unattributed (the basis explains too
	// little of it) and enters the quarantine buffer. Relative residual is
	// ‖s − wΨ‖/‖s‖ in the model's normalized space: 0 = fully explained,
	// 1 = not explained at all. Defaults to 0.5.
	ResidualThreshold float64
	// QuarantineSize bounds the buffer of unattributed exception states kept
	// for the next shadow retrain; the oldest are evicted when it is full.
	// Defaults to 512.
	QuarantineSize int
	// ResidualWindow bounds the rolling sample window behind DriftStats'
	// residual quantiles and unattributed rate. Defaults to 256.
	ResidualWindow int
	// ModelVersion seeds the monitor's model generation counter; 0 means 1.
	// SwapModel advances it.
	ModelVersion uint64
}

func (c Config) withDefaults() Config {
	if c.History == 0 {
		c.History = 64
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4096
	}
	if c.MaxRecent == 0 {
		c.MaxRecent = 128
	}
	if c.Workers == 0 {
		c.Workers = -1
	}
	if c.ResidualThreshold <= 0 {
		c.ResidualThreshold = 0.5
	}
	if c.QuarantineSize == 0 {
		c.QuarantineSize = 512
	}
	if c.ResidualWindow == 0 {
		c.ResidualWindow = 256
	}
	if c.ModelVersion == 0 {
		c.ModelVersion = 1
	}
	return c
}

// Observation is the outcome of ingesting one report.
type Observation struct {
	Node  packet.NodeID `json:"node"`
	Epoch int           `json:"epoch"`
	// First marks a node's first report: no state can be derived yet.
	First bool `json:"first,omitempty"`
	// Duplicate marks an exact retransmission of the node's last report,
	// absorbed without deriving a state.
	Duplicate bool `json:"duplicate,omitempty"`
	// Gap is the epochs since the node's previous report (1 = consecutive);
	// 0 on a first report.
	Gap int `json:"gap,omitempty"`
	// Score is the normalized deviation ε/RefMax of the derived state.
	Score float64 `json:"score"`
	// Flagged marks the state as an exception awaiting diagnosis.
	Flagged bool `json:"flagged,omitempty"`
}

// Flagged is one exception state with its diagnosis, produced by Drain.
type Flagged struct {
	State trace.StateVector `json:"state"`
	// Score is the detector's normalized deviation that flagged the state.
	Score float64 `json:"score"`
	// Diagnosis is the NNLS projection onto the model's root causes.
	Diagnosis *vn2.Diagnosis `json:"diagnosis"`
}

// EpochCauses is the rolling per-epoch root-cause distribution.
type EpochCauses struct {
	Epoch int `json:"epoch"`
	// States is how many flagged states of this epoch were diagnosed.
	States int `json:"states"`
	// Distribution is the per-cause total strength (length Rank).
	Distribution []float64 `json:"distribution"`
}

// Stats counts what the monitor has seen.
type Stats struct {
	// Reports is every record offered to Ingest (including rejects).
	Reports uint64 `json:"reports"`
	// FirstReports is how many were a node's first (no state derived).
	FirstReports uint64 `json:"first_reports"`
	// Warmed counts records primed through Warm.
	Warmed uint64 `json:"warmed"`
	// Stale counts rejected out-of-order records.
	Stale uint64 `json:"stale"`
	// Duplicates counts exact retransmissions absorbed by dedup.
	Duplicates uint64 `json:"duplicates"`
	// Invalid counts rejected malformed records (wrong length, NaN/±Inf).
	Invalid uint64 `json:"invalid"`
	// Normal and Flagged partition the derived states by the detector.
	Normal  uint64 `json:"normal"`
	Flagged uint64 `json:"flagged"`
	// Dropped counts flagged states shed because the backlog was full.
	Dropped uint64 `json:"dropped"`
	// Diagnosed counts flagged states that went through a drain.
	Diagnosed uint64 `json:"diagnosed"`
	// Drains counts non-empty Drain calls.
	Drains uint64 `json:"drains"`
	// GapReports counts states derived across a reporting gap (Gap > 1) —
	// the sink-side trace of lost reports.
	GapReports uint64 `json:"gap_reports"`
	// MaxGap is the largest reporting gap seen.
	MaxGap int `json:"max_gap"`
	// LastEpoch is the newest epoch seen across all nodes.
	LastEpoch int `json:"last_epoch"`
	// Unattributed counts diagnosed exceptions whose relative residual met
	// ResidualThreshold (or whose diagnosis ranked no cause at all): states
	// the current basis could not explain. This is the drift signal.
	Unattributed uint64 `json:"unattributed"`
	// Quarantined counts unattributed states admitted to the quarantine
	// buffer; QuarantineShed counts oldest entries evicted to make room.
	Quarantined    uint64 `json:"quarantined"`
	QuarantineShed uint64 `json:"quarantine_shed"`
	// Swaps counts accepted SwapModel calls over the monitor's lifetime.
	Swaps uint64 `json:"swaps"`
}

// DriftStats summarizes how well the current model explains the recent
// stream: the rolling relative-residual window and the unattributed-exception
// rate the serve path's lifecycle trigger watches.
type DriftStats struct {
	// ModelVersion is the generation of the model the window was measured
	// against; SwapModel resets the window and bumps this.
	ModelVersion uint64 `json:"model_version"`
	// Window is how many diagnosed states the rolling window holds (bounded
	// by Config.ResidualWindow); WindowUnattributed is how many of those were
	// unattributed, and UnattributedRate is their ratio (0 when empty).
	Window             int     `json:"window"`
	WindowUnattributed int     `json:"window_unattributed"`
	UnattributedRate   float64 `json:"unattributed_rate"`
	// Unattributed is the cumulative counter (across the model's lifetime,
	// reset on swap only in the window, never in Stats).
	Unattributed uint64 `json:"unattributed"`
	// MeanResidual and the quantiles describe the window's relative
	// residuals (‖s−wΨ‖/‖s‖, nearest-rank quantiles); all 0 when empty.
	MeanResidual float64 `json:"mean_residual"`
	P50          float64 `json:"p50"`
	P90          float64 `json:"p90"`
	P99          float64 `json:"p99"`
	// Quarantine is the current quarantine-buffer length.
	Quarantine int `json:"quarantine"`
}

// Summary is a consistent snapshot of the monitor's rolling state.
type Summary struct {
	Stats Stats `json:"stats"`
	// Pending is the flagged-state backlog length right now.
	Pending int `json:"pending"`
	// Rank is the model's root-cause count (Distribution length).
	Rank int `json:"rank"`
	// Epochs holds the rolling per-epoch cause distributions, ascending.
	Epochs []EpochCauses `json:"epochs"`
	// Recent holds the most recently diagnosed states, oldest first.
	Recent []Flagged `json:"recent"`
	// Drift is the rolling residual/unattributed view of the same instant.
	Drift DriftStats `json:"drift"`
}

type lastReport struct {
	epoch  int
	vector []float64
}

type pendingState struct {
	state trace.StateVector
	score float64
}

// epochAcc keeps one epoch's diagnosed contributions per node rather than a
// pre-summed distribution. Summing happens at Snapshot time in ascending
// node order, so the per-epoch distribution is a pure function of the SET of
// diagnosed states — bit-identical no matter how drains grouped them, which
// is what lets a crash-recovered monitor reproduce the fault-free run
// exactly (see DESIGN.md "Failure model & recovery").
type epochAcc struct {
	epoch    int
	contribs []Contribution
}

// resSample is one diagnosed state's contribution to the rolling residual
// window.
type resSample struct {
	rel          float64
	unattributed bool
}

// Monitor is the streaming sink service core. All methods are safe for
// concurrent use; Ingest stays O(M) per report and Drain batches the
// expensive NNLS solves. The model and detector are mutable via SwapModel —
// every read of either goes through mu.
type Monitor struct {
	cfg Config

	mu        sync.Mutex
	model     *vn2.Model
	det       *trace.Detector
	version   uint64
	last      map[packet.NodeID]lastReport
	pending   []pendingState
	epochs    map[int]*epochAcc
	recent    []Flagged
	residuals []resSample
	quar      []trace.StateVector
	stats     Stats

	// drainMu serializes drains so two concurrent Drain calls cannot
	// interleave their merges (ingest keeps flowing meanwhile: the solve
	// runs outside mu).
	drainMu sync.Mutex
}

// NewMonitor validates the configuration and returns a ready monitor.
func NewMonitor(cfg Config) (*Monitor, error) {
	c := cfg.withDefaults()
	if c.Model == nil || c.Model.Metrics() == 0 || c.Model.Rank <= 0 {
		return nil, fmt.Errorf("%w: model missing or untrained", ErrBadConfig)
	}
	if !c.Detector.Valid() {
		return nil, fmt.Errorf("%w: detector missing or uncalibrated", ErrBadConfig)
	}
	if c.Detector.Metrics() != c.Model.Metrics() {
		return nil, fmt.Errorf("%w: detector has %d metrics, model %d",
			ErrBadConfig, c.Detector.Metrics(), c.Model.Metrics())
	}
	return &Monitor{
		cfg:     c,
		model:   c.Model,
		det:     c.Detector,
		version: c.ModelVersion,
		last:    make(map[packet.NodeID]lastReport),
		epochs:  make(map[int]*epochAcc),
	}, nil
}

// Warm primes a node's last-report slot without scoring anything — used to
// seed the monitor from the tail of a calibration trace so the first live
// report already produces a state vector.
func (m *Monitor) Warm(rec trace.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(rec.Vector) != m.det.Metrics() {
		return fmt.Errorf("%w: got %d metrics, want %d", trace.ErrVectorLength, len(rec.Vector), m.det.Metrics())
	}
	if k := firstNonFinite(rec.Vector); k >= 0 {
		return fmt.Errorf("%w: metric %d", ErrNonFinite, k)
	}
	if lr, ok := m.last[rec.Node]; ok && rec.Epoch <= lr.epoch {
		m.stats.Stale++
		return fmt.Errorf("%w: node %d epoch %d ≤ %d", ErrStaleReport, rec.Node, rec.Epoch, lr.epoch)
	}
	m.storeLast(rec)
	m.stats.Warmed++
	return nil
}

// storeLast copies rec's vector into the node's slot, reusing the previous
// buffer so steady-state ingest does not allocate per report. Caller holds mu.
func (m *Monitor) storeLast(rec trace.Record) {
	lr := m.last[rec.Node]
	if lr.vector == nil {
		lr.vector = make([]float64, len(rec.Vector))
	}
	copy(lr.vector, rec.Vector)
	lr.epoch = rec.Epoch
	m.last[rec.Node] = lr
	if rec.Epoch > m.stats.LastEpoch {
		m.stats.LastEpoch = rec.Epoch
	}
}

// Ingest feeds one sink report through the online pipeline: diff against
// the node's previous report, score with the frozen detector, and queue the
// state for diagnosis when it is exceptional. The returned Observation
// reports what happened even when an error (stale report, full backlog) is
// returned alongside it.
func (m *Monitor) Ingest(rec trace.Record) (Observation, error) {
	obs := Observation{Node: rec.Node, Epoch: rec.Epoch}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Reports++
	if len(rec.Vector) != m.det.Metrics() {
		m.stats.Invalid++
		return obs, fmt.Errorf("%w: got %d metrics, want %d", trace.ErrVectorLength, len(rec.Vector), m.det.Metrics())
	}
	if k := firstNonFinite(rec.Vector); k >= 0 {
		m.stats.Invalid++
		return obs, fmt.Errorf("%w: node %d epoch %d metric %d", ErrNonFinite, rec.Node, rec.Epoch, k)
	}
	lr, ok := m.last[rec.Node]
	if ok && rec.Epoch == lr.epoch && equalVectors(rec.Vector, lr.vector) {
		// Exact retransmission: absorb it instead of first-differencing it
		// into a spurious zero state or bouncing it back as an error.
		m.stats.Duplicates++
		obs.Duplicate = true
		return obs, nil
	}
	if ok && rec.Epoch <= lr.epoch {
		m.stats.Stale++
		return obs, fmt.Errorf("%w: node %d epoch %d ≤ %d", ErrStaleReport, rec.Node, rec.Epoch, lr.epoch)
	}
	if !ok {
		m.storeLast(rec)
		m.stats.FirstReports++
		obs.First = true
		return obs, nil
	}

	gap := rec.Epoch - lr.epoch
	delta := make([]float64, len(rec.Vector))
	for k, v := range rec.Vector {
		delta[k] = v - lr.vector[k]
	}
	m.storeLast(rec)
	obs.Gap = gap
	if gap > 1 {
		m.stats.GapReports++
	}
	if gap > m.stats.MaxGap {
		m.stats.MaxGap = gap
	}

	flagged, score, err := m.det.Exceptional(delta)
	if err != nil {
		// Length was validated above; this is unreachable, but keep the
		// accounting honest if the detector ever grows new failure modes.
		m.stats.Invalid++
		return obs, err
	}
	obs.Score = score
	if !flagged {
		m.stats.Normal++
		return obs, nil
	}
	obs.Flagged = true
	m.stats.Flagged++
	if len(m.pending) >= m.cfg.MaxPending {
		m.stats.Dropped++
		return obs, fmt.Errorf("%w: %d states pending", ErrBacklog, len(m.pending))
	}
	m.pending = append(m.pending, pendingState{
		state: trace.StateVector{Node: rec.Node, Epoch: rec.Epoch, Gap: gap, Delta: delta},
		score: score,
	})
	return obs, nil
}

// Drain diagnoses everything flagged since the last drain in one parallel
// NNLS batch (nnls.SolveBatchParallel underneath) and folds the results
// into the rolling per-epoch cause distributions. Ingest keeps flowing
// while the solve runs. Returns the diagnosed states in ingest order; a nil
// slice means there was nothing pending.
func (m *Monitor) Drain() ([]Flagged, error) {
	m.drainMu.Lock()
	defer m.drainMu.Unlock()

	m.mu.Lock()
	pend := m.pending
	m.pending = nil
	model, version := m.model, m.version
	m.mu.Unlock()
	if len(pend) == 0 {
		return nil, nil
	}

	states := make([]trace.StateVector, len(pend))
	for i, p := range pend {
		states[i] = p.state
	}
	diags, err := model.DiagnoseBatch(states, vn2.DiagnoseConfig{
		Workers:     m.cfg.Workers,
		MinStrength: m.cfg.MinStrength,
	})
	if err != nil {
		// Put the batch back so nothing is lost; newer flagged states queued
		// during the solve stay behind it in order.
		m.mu.Lock()
		m.pending = append(pend, m.pending...)
		m.mu.Unlock()
		return nil, fmt.Errorf("drain: %w", err)
	}

	out := make([]Flagged, len(pend))
	samples := make([]resSample, len(pend))
	for i, p := range pend {
		out[i] = Flagged{State: p.state, Score: p.score, Diagnosis: diags[i]}
		samples[i] = m.classify(model, p.state.Delta, diags[i])
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Drains++
	m.stats.Diagnosed += uint64(len(out))
	for _, f := range out {
		ec := m.epochs[f.State.Epoch]
		if ec == nil {
			ec = &epochAcc{epoch: f.State.Epoch}
			m.epochs[f.State.Epoch] = ec
		}
		ec.contribs = append(ec.contribs, Contribution{
			Node:   f.State.Node,
			Causes: append([]vn2.RankedCause(nil), f.Diagnosis.Ranked...),
		})
	}
	m.recent = append(m.recent, out...)
	if over := len(m.recent) - m.cfg.MaxRecent; over > 0 {
		m.recent = append(m.recent[:0], m.recent[over:]...)
	}
	// The drift window and quarantine describe ONE model generation. If a
	// swap landed while the solve ran, these samples were measured against
	// the outgoing model — folding them into the new generation's window
	// would poison its baseline, so they are dropped. Epoch distributions
	// and the recent ring merge regardless: they record what was served.
	if m.version == version {
		for i, sm := range samples {
			m.residuals = append(m.residuals, sm)
			if !sm.unattributed {
				continue
			}
			m.stats.Unattributed++
			if len(m.quar) >= m.cfg.QuarantineSize {
				shed := len(m.quar) - m.cfg.QuarantineSize + 1
				m.quar = append(m.quar[:0], m.quar[shed:]...)
				m.stats.QuarantineShed += uint64(shed)
			}
			m.quar = append(m.quar, copyState(out[i].State))
			m.stats.Quarantined++
		}
		if over := len(m.residuals) - m.cfg.ResidualWindow; over > 0 {
			m.residuals = append(m.residuals[:0], m.residuals[over:]...)
		}
	}
	// Prune epochs that fell out of the rolling window.
	floor := m.stats.LastEpoch - m.cfg.History
	for e := range m.epochs {
		if e <= floor {
			delete(m.epochs, e)
		}
	}
	return out, nil
}

// classify turns one diagnosis into its drift-window sample: the relative
// residual ‖s−wΨ‖/‖s‖ and whether the state counts as unattributed (residual
// past the threshold, or an empty diagnosis of a state the detector flagged).
func (m *Monitor) classify(model *vn2.Model, delta []float64, d *vn2.Diagnosis) resSample {
	norm, err := model.NormalizedNorm(delta)
	var rel float64
	switch {
	case err != nil || norm < 1e-12:
		// A flagged state with a ~zero normalized norm should not happen
		// (the detector flagged it for deviating); treat any leftover
		// residual as fully unexplained rather than dividing by ~0.
		if d.Residual > 1e-12 {
			rel = 1
		}
	default:
		rel = d.Residual / norm
		if rel > 1 {
			rel = 1
		}
	}
	return resSample{rel: rel, unattributed: rel >= m.cfg.ResidualThreshold || len(d.Ranked) == 0}
}

// Snapshot returns a consistent copy of the rolling state: counters, the
// per-epoch cause distributions (ascending) and the recent diagnoses.
func (m *Monitor) Snapshot() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{
		Stats:   m.stats,
		Pending: len(m.pending),
		Rank:    m.model.Rank,
		Epochs:  make([]EpochCauses, 0, len(m.epochs)),
		Recent:  append([]Flagged(nil), m.recent...),
		Drift:   m.driftLocked(),
	}
	for _, ec := range m.epochs {
		s.Epochs = append(s.Epochs, ec.causes(m.model.Rank))
	}
	sort.Slice(s.Epochs, func(i, j int) bool { return s.Epochs[i].Epoch < s.Epochs[j].Epoch })
	return s
}

// causes sums an epoch's contributions into its cause distribution, in
// ascending node order so the result does not depend on drain grouping.
// Caller holds mu.
func (ec *epochAcc) causes(rank int) EpochCauses {
	sorted := append([]Contribution(nil), ec.contribs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	out := EpochCauses{Epoch: ec.epoch, States: len(sorted), Distribution: make([]float64, rank)}
	for _, c := range sorted {
		for _, rc := range c.Causes {
			if rc.Cause >= 0 && rc.Cause < rank {
				out.Distribution[rc.Cause] += rc.Strength
			}
		}
	}
	return out
}

// firstNonFinite returns the index of the first NaN/±Inf value, or -1.
func firstNonFinite(v []float64) int {
	for k, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return k
		}
	}
	return -1
}

// equalVectors reports bit-exact equality (NaNs never reach here; records
// are sanitized first).
func equalVectors(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// EpochCauses returns the rolling cause distribution of one epoch, summed in
// ascending node order (bit-identical regardless of how drains grouped the
// states), and whether the epoch is still inside the rolling window. This is
// the per-epoch hook behind the sink's EpochDiagnosed stream event: after a
// drain, the sink asks for exactly the epochs that drain touched instead of
// paying for a full Snapshot.
func (m *Monitor) EpochCauses(epoch int) (EpochCauses, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ec := m.epochs[epoch]
	if ec == nil {
		return EpochCauses{}, false
	}
	return ec.causes(m.model.Rank), true
}

// Stats returns a copy of the counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Pending returns the flagged-state backlog length.
func (m *Monitor) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// ModelVersion returns the generation of the currently serving model.
func (m *Monitor) ModelVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// DriftStats returns the rolling drift view: residual quantiles and the
// unattributed rate over the current model's sample window.
func (m *Monitor) DriftStats() DriftStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.driftLocked()
}

// driftLocked computes DriftStats. Caller holds mu.
func (m *Monitor) driftLocked() DriftStats {
	ds := DriftStats{
		ModelVersion: m.version,
		Window:       len(m.residuals),
		Unattributed: m.stats.Unattributed,
		Quarantine:   len(m.quar),
	}
	if len(m.residuals) == 0 {
		return ds
	}
	rels := make([]float64, len(m.residuals))
	var sum float64
	for i, s := range m.residuals {
		rels[i] = s.rel
		sum += s.rel
		if s.unattributed {
			ds.WindowUnattributed++
		}
	}
	ds.UnattributedRate = float64(ds.WindowUnattributed) / float64(len(m.residuals))
	ds.MeanResidual = sum / float64(len(m.residuals))
	sort.Float64s(rels)
	nearest := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(rels)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(rels) {
			i = len(rels) - 1
		}
		return rels[i]
	}
	ds.P50, ds.P90, ds.P99 = nearest(0.50), nearest(0.90), nearest(0.99)
	return ds
}

// Quarantine returns a deep copy of the quarantined unattributed states,
// oldest first — the shadow retrainer's raw material.
func (m *Monitor) Quarantine() []trace.StateVector {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]trace.StateVector, len(m.quar))
	for i, s := range m.quar {
		out[i] = copyState(s)
	}
	return out
}

// RecentWindow returns a deep copy of the recent diagnosed ring, oldest
// first — the lifecycle's held-out validation set: states the CURRENT model
// already diagnosed, replayable against a candidate for an apples-to-apples
// residual and dominant-cause comparison.
func (m *Monitor) RecentWindow() []Flagged {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Flagged, len(m.recent))
	for i, f := range m.recent {
		out[i] = copyFlagged(f)
	}
	return out
}

// copyFlagged deep-copies one recent-ring entry.
func copyFlagged(f Flagged) Flagged {
	f.State = copyState(f.State)
	if f.Diagnosis != nil {
		d := *f.Diagnosis
		d.Weights = append([]float64(nil), f.Diagnosis.Weights...)
		d.Ranked = append([]vn2.RankedCause(nil), f.Diagnosis.Ranked...)
		f.Diagnosis = &d
	}
	return f
}

// SwapModel atomically replaces the serving model (and optionally the
// detector: nil keeps the current one) under a new generation number. The
// version must advance — rollbacks re-install old model CONTENT under a NEW
// version, keeping the generation counter monotonic so swap records replay
// deterministically. The drift window and quarantine are cleared (they
// describe the outgoing model); pending states stay queued and are diagnosed
// by the new model; the recent ring and epoch distributions stay as the
// record of what was actually served.
func (m *Monitor) SwapModel(version uint64, model *vn2.Model, det *trace.Detector) error {
	if model == nil || model.Metrics() == 0 || model.Rank <= 0 {
		return fmt.Errorf("%w: swap model missing or untrained", ErrBadConfig)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if version <= m.version {
		return fmt.Errorf("%w: swap version %d not after current %d", ErrBadConfig, version, m.version)
	}
	nd := m.det
	if det != nil {
		if !det.Valid() {
			return fmt.Errorf("%w: swap detector uncalibrated", ErrBadConfig)
		}
		nd = det
	}
	if nd.Metrics() != model.Metrics() {
		return fmt.Errorf("%w: detector has %d metrics, swap model %d",
			ErrBadConfig, nd.Metrics(), model.Metrics())
	}
	if model.Metrics() != m.det.Metrics() {
		return fmt.Errorf("%w: swap model has %d metrics, stream has %d",
			ErrBadConfig, model.Metrics(), m.det.Metrics())
	}
	m.model = model
	m.det = nd
	m.version = version
	m.residuals = nil
	m.quar = nil
	m.stats.Swaps++
	return nil
}
