package online

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
)

// TestIngestRejectsNonFinite: NaN/±Inf reports are stopped at the boundary
// with the typed error, counted as invalid, and never become states.
func TestIngestRejectsNonFinite(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		rec := r.calm(1, 10)
		rec.Vector[5] = bad
		if _, err := m.Ingest(rec); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("ingest %v: err = %v, want ErrNonFinite", bad, err)
		}
		if err := m.Warm(rec); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("warm %v: err = %v, want ErrNonFinite", bad, err)
		}
	}
	st := m.Stats()
	if st.Invalid != 3 || st.FirstReports != 0 {
		t.Fatalf("stats = %+v, want 3 invalid and no accepted reports", st)
	}
}

// TestDuplicateAcrossGap: a retransmission of an OLDER epoch (not the
// node's last) is stale, not a duplicate — only the last report dedups.
func TestDuplicateAcrossGap(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})
	old := r.calm(1, 10)
	if _, err := m.Ingest(old); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(r.calm(1, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(old); !errors.Is(err, ErrStaleReport) {
		t.Fatalf("old retransmission err = %v, want ErrStaleReport", err)
	}
}

// TestStateRoundTrip: State → JSON → Restore onto a fresh monitor
// reproduces the rolling state exactly, including the flagged backlog, and
// the restored monitor keeps streaming from where the original stopped.
func TestStateRoundTrip(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})
	for node := packet.NodeID(1); node <= 4; node++ {
		if err := m.Warm(r.calm(node, 30)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Ingest(r.hot(node, 31)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	// Leave two states pending so the backlog round-trips too.
	for node := packet.NodeID(1); node <= 2; node++ {
		if _, err := m.Ingest(r.hot(node, 32)); err != nil {
			t.Fatal(err)
		}
	}

	st := m.State()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st2 MonitorState
	if err := json.Unmarshal(b, &st2); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	m2 := newTestMonitor(t, Config{})
	if err := m2.Restore(st2); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	if got, want := m2.Stats(), m.Stats(); got != want {
		t.Fatalf("restored stats %+v != %+v", got, want)
	}
	if m2.Pending() != m.Pending() {
		t.Fatalf("restored pending %d != %d", m2.Pending(), m.Pending())
	}
	s1, s2 := m.Snapshot(), m2.Snapshot()
	if !reflect.DeepEqual(s1.Epochs, s2.Epochs) {
		t.Fatalf("restored epoch distributions differ:\n%+v\n%+v", s1.Epochs, s2.Epochs)
	}
	if !reflect.DeepEqual(s1.Recent, s2.Recent) {
		t.Fatal("restored recent ring differs")
	}

	// Both monitors process the same continuation identically.
	for _, mm := range []*Monitor{m, m2} {
		if _, err := mm.Ingest(r.hot(3, 33)); err != nil {
			t.Fatal(err)
		}
		if _, err := mm.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	s1, s2 = m.Snapshot(), m2.Snapshot()
	if !reflect.DeepEqual(s1.Epochs, s2.Epochs) {
		t.Fatal("continuation after restore diverged")
	}
	// A retransmission of the last pre-export report dedups on the restored
	// monitor too — the diff slots made it across.
	if obs, err := m2.Ingest(r.hot(4, 31)); err != nil || !obs.Duplicate {
		t.Fatalf("retransmission after restore: obs=%+v err=%v", obs, err)
	}
}

// TestRestoreValidates rejects states whose vectors disagree with the
// detector's metric count.
func TestRestoreValidates(t *testing.T) {
	m := newTestMonitor(t, Config{})
	if err := m.Restore(MonitorState{Nodes: []NodeState{{Node: 1, Epoch: 1, Vector: []float64{1, 2}}}}); !errors.Is(err, ErrBadState) {
		t.Fatalf("short node vector err = %v, want ErrBadState", err)
	}
	if err := m.Restore(MonitorState{Pending: []PendingState{{State: trace.StateVector{Node: 1, Epoch: 1, Delta: []float64{1}}}}}); !errors.Is(err, ErrBadState) {
		t.Fatalf("short pending delta err = %v, want ErrBadState", err)
	}
}

// TestEpochDistributionDrainOrderInvariant is the exactness keystone of the
// chaos harness: the same set of diagnosed states must produce bit-identical
// per-epoch distributions no matter how drains grouped them or in what
// order the states arrived.
func TestEpochDistributionDrainOrderInvariant(t *testing.T) {
	r := newRig(t)

	feed := func(order []packet.NodeID, drainAfterEach bool) []EpochCauses {
		m := newTestMonitor(t, Config{})
		for _, node := range order {
			if err := m.Warm(r.calm(node, 40)); err != nil {
				t.Fatal(err)
			}
		}
		for _, node := range order {
			if _, err := m.Ingest(r.hot(node, 41)); err != nil {
				t.Fatal(err)
			}
			if drainAfterEach {
				if _, err := m.Drain(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot().Epochs
	}

	base := feed([]packet.NodeID{1, 2, 3, 4, 5, 6}, false)    // one big drain
	perState := feed([]packet.NodeID{1, 2, 3, 4, 5, 6}, true) // one drain per state
	shuffled := feed([]packet.NodeID{4, 6, 1, 5, 3, 2}, true) // different arrival order
	for name, got := range map[string][]EpochCauses{"per-state drains": perState, "shuffled arrival": shuffled} {
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s: distributions diverged from single-drain baseline", name)
		}
	}
}
