package online

import (
	"fmt"
	"sort"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/vn2"
)

// NodeSlice is the portable per-node slice of a monitor's rolling state:
// everything a sink must hand to another sink when ring ownership of a
// set of nodes moves. It carries each moved node's first-differencing
// baseline, its flagged-but-undiagnosed backlog entries, and its share of
// the per-epoch cause contributions — exactly the state the fleet merge
// depends on. Cumulative Stats counters stay with the source shard: they
// are operational telemetry about where work happened, not diagnosis
// state, and moving them would double-count fleet-wide totals.
//
// Slices are in canonical order (nodes ascending, epochs ascending) so
// the same logical slice always marshals to the same bytes — which is
// what lets the handoff WAL record replay deterministically.
type NodeSlice struct {
	Nodes   []NodeState    `json:"nodes"`
	Pending []PendingState `json:"pending,omitempty"`
	Epochs  []EpochState   `json:"epochs,omitempty"`
}

// Empty reports whether the slice carries no state at all.
func (sl NodeSlice) Empty() bool {
	return len(sl.Nodes) == 0 && len(sl.Pending) == 0 && len(sl.Epochs) == 0
}

// ExportNodes returns a deep copy of the given nodes' slice of the
// monitor state without mutating anything — the export half of a shard
// handoff. Pair with DropNodes once the slice is durably accepted by the
// target shard.
func (m *Monitor) ExportNodes(nodes []packet.NodeID) NodeSlice {
	want := nodeSet(nodes)
	m.mu.Lock()
	defer m.mu.Unlock()
	var sl NodeSlice
	for id, lr := range m.last {
		if !want[id] {
			continue
		}
		sl.Nodes = append(sl.Nodes, NodeState{
			Node:   id,
			Epoch:  lr.epoch,
			Vector: append([]float64(nil), lr.vector...),
		})
	}
	sort.Slice(sl.Nodes, func(i, j int) bool { return sl.Nodes[i].Node < sl.Nodes[j].Node })
	for _, p := range m.pending {
		if want[p.state.Node] {
			sl.Pending = append(sl.Pending, PendingState{State: copyState(p.state), Score: p.score})
		}
	}
	for _, ec := range m.epochs {
		var es EpochState
		for _, c := range ec.contribs {
			if !want[c.Node] {
				continue
			}
			es.Contribs = append(es.Contribs, Contribution{
				Node:   c.Node,
				Causes: append([]vn2.RankedCause(nil), c.Causes...),
			})
		}
		if len(es.Contribs) == 0 {
			continue
		}
		es.Epoch = ec.epoch
		sort.Slice(es.Contribs, func(i, j int) bool { return es.Contribs[i].Node < es.Contribs[j].Node })
		sl.Epochs = append(sl.Epochs, es)
	}
	sort.Slice(sl.Epochs, func(i, j int) bool { return sl.Epochs[i].Epoch < sl.Epochs[j].Epoch })
	return sl
}

// DropNodes removes the given nodes' slice from the monitor: their
// baselines, their pending flagged states, and their per-epoch
// contributions (epochs left with no contributions are deleted). The
// release half of a shard handoff; also correct for permanent
// decommissioning of nodes.
func (m *Monitor) DropNodes(nodes []packet.NodeID) {
	drop := nodeSet(nodes)
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range drop {
		delete(m.last, id)
	}
	kept := m.pending[:0]
	for _, p := range m.pending {
		if !drop[p.state.Node] {
			kept = append(kept, p)
		}
	}
	m.pending = kept
	for e, ec := range m.epochs {
		kc := ec.contribs[:0]
		for _, c := range ec.contribs {
			if !drop[c.Node] {
				kc = append(kc, c)
			}
		}
		ec.contribs = kc
		if len(ec.contribs) == 0 {
			delete(m.epochs, e)
		}
	}
}

// ImportNodes merges a handed-off slice into the monitor — the accept
// half of a shard handoff. Shapes are validated against the live
// detector/model before anything is touched, so a slice exported against
// an incompatible model fails atomically with ErrBadState.
//
// A baseline for a node the monitor already tracks is only overwritten
// when the imported report is at least as new, preserving the ingest
// path's epoch monotonicity; contributions always append, because ring
// ownership guarantees the source and target never diagnosed the same
// (node, epoch) state.
func (m *Monitor) ImportNodes(sl NodeSlice) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.validateSliceLocked(sl); err != nil {
		return err
	}
	for _, ns := range sl.Nodes {
		if lr, ok := m.last[ns.Node]; ok && lr.epoch > ns.Epoch {
			continue
		}
		m.last[ns.Node] = lastReport{
			epoch:  ns.Epoch,
			vector: append([]float64(nil), ns.Vector...),
		}
		if ns.Epoch > m.stats.LastEpoch {
			m.stats.LastEpoch = ns.Epoch
		}
	}
	for _, p := range sl.Pending {
		m.pending = append(m.pending, pendingState{state: copyState(p.State), score: p.Score})
	}
	for _, es := range sl.Epochs {
		ec := m.epochs[es.Epoch]
		if ec == nil {
			ec = &epochAcc{epoch: es.Epoch}
			m.epochs[es.Epoch] = ec
		}
		for _, c := range es.Contribs {
			ec.contribs = append(ec.contribs, Contribution{
				Node:   c.Node,
				Causes: append([]vn2.RankedCause(nil), c.Causes...),
			})
		}
		if es.Epoch > m.stats.LastEpoch {
			m.stats.LastEpoch = es.Epoch
		}
	}
	return nil
}

// ValidateSlice checks a handed-off slice against the live detector and
// model without touching any state — the sink runs this BEFORE journaling
// the handoff record, so a slice that could never import does not poison
// the WAL with a record that would fail again on every replay.
func (m *Monitor) ValidateSlice(sl NodeSlice) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.validateSliceLocked(sl)
}

// validateSliceLocked checks shapes against the live detector/model.
// Caller holds mu.
func (m *Monitor) validateSliceLocked(sl NodeSlice) error {
	metrics := m.det.Metrics()
	rank := m.model.Rank
	for _, ns := range sl.Nodes {
		if len(ns.Vector) != metrics {
			return fmt.Errorf("%w: handoff node %d vector has %d metrics, want %d",
				ErrBadState, ns.Node, len(ns.Vector), metrics)
		}
		if k := firstNonFinite(ns.Vector); k >= 0 {
			return fmt.Errorf("%w: handoff node %d metric %d non-finite", ErrBadState, ns.Node, k)
		}
	}
	for _, p := range sl.Pending {
		if len(p.State.Delta) != metrics {
			return fmt.Errorf("%w: handoff pending node %d delta has %d metrics, want %d",
				ErrBadState, p.State.Node, len(p.State.Delta), metrics)
		}
	}
	for _, es := range sl.Epochs {
		for _, c := range es.Contribs {
			for _, rc := range c.Causes {
				if rc.Cause < 0 || rc.Cause >= rank {
					return fmt.Errorf("%w: handoff epoch %d node %d cites cause %d outside model rank %d",
						ErrBadState, es.Epoch, c.Node, rc.Cause, rank)
				}
			}
		}
	}
	return nil
}

// EpochStates exports the rolling per-epoch contributions in canonical
// order (epochs ascending, contributions node-ascending) WITHOUT the
// rest of the monitor state — the fleet aggregator's merge input. Unlike
// Snapshot, the distributions are not pre-summed: the fleet merge needs
// the raw contributions so it can re-sum the union across shards in one
// canonical node order and stay bit-identical to a single sink (float
// addition is not associative, so summing pre-summed shard totals would
// not be).
func (m *Monitor) EpochStates() []EpochState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EpochState, 0, len(m.epochs))
	for _, ec := range m.epochs {
		es := EpochState{Epoch: ec.epoch, Contribs: make([]Contribution, len(ec.contribs))}
		for i, c := range ec.contribs {
			es.Contribs[i] = Contribution{Node: c.Node, Causes: append([]vn2.RankedCause(nil), c.Causes...)}
		}
		sort.Slice(es.Contribs, func(i, j int) bool { return es.Contribs[i].Node < es.Contribs[j].Node })
		out = append(out, es)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// Rank returns the serving model's root-cause count — the Distribution
// length of every EpochCauses this monitor produces.
func (m *Monitor) Rank() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.model.Rank
}

func nodeSet(nodes []packet.NodeID) map[packet.NodeID]bool {
	s := make(map[packet.NodeID]bool, len(nodes))
	for _, n := range nodes {
		s[n] = true
	}
	return s
}
