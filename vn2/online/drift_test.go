package online

import (
	"errors"
	"testing"

	"github.com/wsn-tools/vn2/internal/metricspec"
	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
)

// alien returns a report whose derived delta spikes metrics NO training
// archetype ever touched — the detector flags it, but the basis cannot
// explain it, so it must classify as unattributed.
func (r testRig) alien(node packet.NodeID, epoch int) trace.Record {
	v := make([]float64, len(r.baseline))
	copy(v, r.baseline)
	v[metricspec.BeaconCounter] += float64(epoch) * 500
	v[metricspec.NoParentCounter] += float64(epoch) * 400
	return trace.Record{Node: node, Epoch: epoch, Vector: v}
}

func ingestOK(t *testing.T, m *Monitor, rec trace.Record) Observation {
	t.Helper()
	obs, err := m.Ingest(rec)
	if err != nil {
		t.Fatalf("Ingest(node %d epoch %d): %v", rec.Node, rec.Epoch, err)
	}
	return obs
}

func TestDriftClassification(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})

	// Node 1 streams on-basis contention storms, node 2 streams off-basis
	// alien states; both must be flagged by the detector.
	for epoch := 1; epoch <= 9; epoch++ {
		hotObs := ingestOK(t, m, r.hot(1, epoch))
		alienObs := ingestOK(t, m, r.alien(2, epoch))
		if epoch > 1 && (!hotObs.Flagged || !alienObs.Flagged) {
			t.Fatalf("epoch %d: hot flagged=%v alien flagged=%v, want both", epoch, hotObs.Flagged, alienObs.Flagged)
		}
	}
	if _, err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	ds := m.DriftStats()
	if ds.ModelVersion != 1 {
		t.Errorf("ModelVersion = %d, want 1", ds.ModelVersion)
	}
	if ds.Window != 16 {
		t.Errorf("Window = %d, want 16 (8 hot + 8 alien)", ds.Window)
	}
	// The alien half is unattributed, the hot half is explained by the
	// contention cause the model was trained on.
	if ds.WindowUnattributed != 8 {
		t.Errorf("WindowUnattributed = %d, want 8", ds.WindowUnattributed)
	}
	if ds.UnattributedRate != 0.5 {
		t.Errorf("UnattributedRate = %v, want 0.5", ds.UnattributedRate)
	}
	if ds.Quarantine != 8 {
		t.Errorf("Quarantine = %d, want 8", ds.Quarantine)
	}
	if !(ds.P50 > 0 && ds.P50 <= ds.P90 && ds.P90 <= ds.P99 && ds.P99 <= 1) {
		t.Errorf("quantiles not ordered in (0,1]: p50=%v p90=%v p99=%v", ds.P50, ds.P90, ds.P99)
	}
	st := m.Stats()
	if st.Unattributed != 8 || st.Quarantined != 8 {
		t.Errorf("stats unattributed=%d quarantined=%d, want 8/8", st.Unattributed, st.Quarantined)
	}
	q := m.Quarantine()
	if len(q) != 8 {
		t.Fatalf("Quarantine() len = %d, want 8", len(q))
	}
	for _, s := range q {
		if s.Node != 2 {
			t.Errorf("quarantined state from node %d, want only node 2", s.Node)
		}
	}
	if sum := m.Snapshot(); sum.Drift != ds {
		t.Errorf("Snapshot().Drift = %+v, want %+v", sum.Drift, ds)
	}
}

func TestQuarantineBound(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{QuarantineSize: 4, ResidualWindow: 6})
	for epoch := 1; epoch <= 11; epoch++ {
		ingestOK(t, m, r.alien(3, epoch))
	}
	if _, err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ds := m.DriftStats()
	if ds.Quarantine != 4 {
		t.Errorf("Quarantine = %d, want bound 4", ds.Quarantine)
	}
	if ds.Window != 6 {
		t.Errorf("Window = %d, want bound 6", ds.Window)
	}
	st := m.Stats()
	if st.QuarantineShed != 6 {
		t.Errorf("QuarantineShed = %d, want 6 (10 quarantined into 4 slots)", st.QuarantineShed)
	}
	// The oldest were shed: the survivors are the 4 newest epochs.
	q := m.Quarantine()
	for i, s := range q {
		if want := 8 + i; s.Epoch != want {
			t.Errorf("quarantine[%d].Epoch = %d, want %d", i, s.Epoch, want)
		}
	}
}

func TestSwapModel(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{})
	for epoch := 1; epoch <= 5; epoch++ {
		ingestOK(t, m, r.alien(4, epoch))
	}
	if _, err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if m.DriftStats().Window == 0 {
		t.Fatal("expected a populated drift window before swap")
	}

	if err := m.SwapModel(1, r.model, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("swap to same version: err = %v, want ErrBadConfig", err)
	}
	if err := m.SwapModel(2, &vn2.Model{}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("swap to untrained model: err = %v, want ErrBadConfig", err)
	}
	if err := m.SwapModel(2, r.model, &trace.Detector{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("swap with invalid detector: err = %v, want ErrBadConfig", err)
	}

	if err := m.SwapModel(2, r.model, nil); err != nil {
		t.Fatalf("SwapModel: %v", err)
	}
	if got := m.ModelVersion(); got != 2 {
		t.Errorf("ModelVersion = %d, want 2", got)
	}
	ds := m.DriftStats()
	if ds.Window != 0 || ds.Quarantine != 0 {
		t.Errorf("drift window/quarantine not cleared by swap: %+v", ds)
	}
	if st := m.Stats(); st.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", st.Swaps)
	}
	// The stream keeps flowing through the new generation.
	obs := ingestOK(t, m, r.hot(9, 3))
	if obs.First {
		_ = obs // first report for node 9; follow with a second to derive a state
	}
	ingestOK(t, m, r.hot(9, 4))
	if _, err := m.Drain(); err != nil {
		t.Fatalf("Drain after swap: %v", err)
	}
	if ds := m.DriftStats(); ds.ModelVersion != 2 || ds.Window == 0 {
		t.Errorf("post-swap drift window = %+v, want version 2 with samples", ds)
	}
}

func TestDriftStateRoundTrip(t *testing.T) {
	r := newRig(t)
	m := newTestMonitor(t, Config{ModelVersion: 7})
	for epoch := 1; epoch <= 6; epoch++ {
		ingestOK(t, m, r.hot(1, epoch))
		ingestOK(t, m, r.alien(2, epoch))
	}
	if _, err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	want := m.DriftStats()
	if want.Window == 0 || want.Quarantine == 0 {
		t.Fatalf("fixture produced empty drift state: %+v", want)
	}

	st := m.State()
	if st.ModelVersion != 7 {
		t.Fatalf("State().ModelVersion = %d, want 7", st.ModelVersion)
	}
	m2 := newTestMonitor(t, Config{})
	if err := m2.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := m2.DriftStats(); got != want {
		t.Errorf("restored DriftStats = %+v, want %+v", got, want)
	}
	if got := m2.ModelVersion(); got != 7 {
		t.Errorf("restored ModelVersion = %d, want 7", got)
	}
	// RecentWindow must hand back deep copies: mutating the caller's view
	// must not leak into the monitor.
	rw := m2.RecentWindow()
	if len(rw) == 0 {
		t.Fatal("RecentWindow is empty")
	}
	rw[0].State.Delta[0] = 1e18
	rw[0].Diagnosis.Weights[0] = 1e18
	if m2.RecentWindow()[0].State.Delta[0] == 1e18 {
		t.Error("RecentWindow leaked internal state slices")
	}
}

func TestRestoreValidatesDriftShapes(t *testing.T) {
	r := newRig(t)
	base := func() MonitorState {
		m := newTestMonitor(t, Config{})
		ingestOK(t, m, r.hot(1, 1))
		ingestOK(t, m, r.hot(1, 2))
		if _, err := m.Drain(); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		return m.State()
	}

	t.Run("quarantine width", func(t *testing.T) {
		st := base()
		st.Quarantine = []trace.StateVector{{Node: 1, Epoch: 1, Delta: []float64{1, 2}}}
		if err := newTestMonitor(t, Config{}).Restore(st); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v, want ErrBadState", err)
		}
	})
	t.Run("recent weights rank", func(t *testing.T) {
		st := base()
		if len(st.Recent) == 0 || st.Recent[0].Diagnosis == nil {
			t.Fatal("fixture has no recent diagnosis")
		}
		st.Recent[0].Diagnosis.Weights = []float64{1}
		if err := newTestMonitor(t, Config{}).Restore(st); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v, want ErrBadState", err)
		}
	})
	t.Run("epoch cause rank", func(t *testing.T) {
		st := base()
		if len(st.Epochs) == 0 || len(st.Epochs[0].Contribs) == 0 {
			t.Fatal("fixture has no epoch contributions")
		}
		st.Epochs[0].Contribs[0].Causes = []vn2.RankedCause{{Cause: r.model.Rank, Strength: 1}}
		if err := newTestMonitor(t, Config{}).Restore(st); !errors.Is(err, ErrBadState) {
			t.Errorf("err = %v, want ErrBadState", err)
		}
	})
}
