package online

import (
	"fmt"
	"sort"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2"
)

// Contribution is one diagnosed state's share of an epoch's cause
// distribution, kept per node so the distribution can be re-summed in a
// canonical order (see epochAcc).
type Contribution struct {
	Node   packet.NodeID     `json:"node"`
	Causes []vn2.RankedCause `json:"causes"`
}

// NodeState is one node's last ingested report — the first-differencing
// slot.
type NodeState struct {
	Node   packet.NodeID `json:"node"`
	Epoch  int           `json:"epoch"`
	Vector []float64     `json:"vector"`
}

// PendingState is one flagged state awaiting diagnosis.
type PendingState struct {
	State trace.StateVector `json:"state"`
	Score float64           `json:"score"`
}

// EpochState is one epoch's diagnosed contributions.
type EpochState struct {
	Epoch    int            `json:"epoch"`
	Contribs []Contribution `json:"contribs"`
}

// ResidualSample is one drift-window entry in serializable form.
type ResidualSample struct {
	Rel          float64 `json:"rel"`
	Unattributed bool    `json:"unattributed,omitempty"`
}

// MonitorState is the monitor's complete rolling state in serializable
// form: counters, every node's diff slot, the flagged backlog, the
// per-epoch contributions, and the recent ring. Together with a model and
// detector it reconstructs a monitor exactly; the serve subcommand embeds
// it in snapshots so a restart resumes mid-stream instead of re-warming,
// and a WAL replay on top recovers everything past the snapshot.
type MonitorState struct {
	Stats   Stats          `json:"stats"`
	Nodes   []NodeState    `json:"nodes"`
	Pending []PendingState `json:"pending,omitempty"`
	Epochs  []EpochState   `json:"epochs,omitempty"`
	Recent  []Flagged      `json:"recent,omitempty"`
	// ModelVersion is the serving model's generation at export time; 0 (a
	// pre-lifecycle state) keeps the restoring monitor's configured version.
	ModelVersion uint64 `json:"model_version,omitempty"`
	// Quarantine and Residuals carry the drift window: the unattributed
	// states held for retraining and the rolling relative-residual samples.
	Quarantine []trace.StateVector `json:"quarantine,omitempty"`
	Residuals  []ResidualSample    `json:"residuals,omitempty"`
}

// State exports a consistent deep copy of the monitor's rolling state, with
// every slice in a canonical (node- or epoch-ascending) order so the same
// logical state always marshals to the same bytes.
func (m *Monitor) State() MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MonitorState{Stats: m.stats}
	st.Nodes = make([]NodeState, 0, len(m.last))
	for id, lr := range m.last {
		st.Nodes = append(st.Nodes, NodeState{
			Node:   id,
			Epoch:  lr.epoch,
			Vector: append([]float64(nil), lr.vector...),
		})
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Node < st.Nodes[j].Node })
	st.Pending = make([]PendingState, len(m.pending))
	for i, p := range m.pending {
		st.Pending[i] = PendingState{State: copyState(p.state), Score: p.score}
	}
	st.Epochs = make([]EpochState, 0, len(m.epochs))
	for _, ec := range m.epochs {
		es := EpochState{Epoch: ec.epoch, Contribs: make([]Contribution, len(ec.contribs))}
		for i, c := range ec.contribs {
			es.Contribs[i] = Contribution{Node: c.Node, Causes: append([]vn2.RankedCause(nil), c.Causes...)}
		}
		sort.Slice(es.Contribs, func(i, j int) bool { return es.Contribs[i].Node < es.Contribs[j].Node })
		st.Epochs = append(st.Epochs, es)
	}
	sort.Slice(st.Epochs, func(i, j int) bool { return st.Epochs[i].Epoch < st.Epochs[j].Epoch })
	st.Recent = make([]Flagged, len(m.recent))
	for i, f := range m.recent {
		st.Recent[i] = copyFlagged(f)
	}
	st.ModelVersion = m.version
	if len(m.quar) > 0 {
		st.Quarantine = make([]trace.StateVector, len(m.quar))
		for i, s := range m.quar {
			st.Quarantine[i] = copyState(s)
		}
	}
	if len(m.residuals) > 0 {
		st.Residuals = make([]ResidualSample, len(m.residuals))
		for i, s := range m.residuals {
			st.Residuals[i] = ResidualSample{Rel: s.rel, Unattributed: s.unattributed}
		}
	}
	return st
}

func copyState(s trace.StateVector) trace.StateVector {
	s.Delta = append([]float64(nil), s.Delta...)
	return s
}

// Restore loads an exported state into a freshly constructed monitor,
// replacing whatever it held. Vector lengths are validated against the
// detector and diagnosis shapes against the model's rank, so a snapshot
// whose monitor state disagrees with the model/detector it is restored
// against fails with a typed ErrBadState instead of corrupting the stream
// (the serve path surfaces that as a snapshot/model mismatch).
func (m *Monitor) Restore(st MonitorState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	metrics := m.det.Metrics()
	rank := m.model.Rank
	for _, ns := range st.Nodes {
		if len(ns.Vector) != metrics {
			return fmt.Errorf("%w: node %d vector has %d metrics, want %d",
				ErrBadState, ns.Node, len(ns.Vector), metrics)
		}
	}
	for _, p := range st.Pending {
		if len(p.State.Delta) != metrics {
			return fmt.Errorf("%w: pending state node %d delta has %d metrics, want %d",
				ErrBadState, p.State.Node, len(p.State.Delta), metrics)
		}
	}
	for _, s := range st.Quarantine {
		if len(s.Delta) != metrics {
			return fmt.Errorf("%w: quarantined state node %d delta has %d metrics, want %d",
				ErrBadState, s.Node, len(s.Delta), metrics)
		}
	}
	for _, f := range st.Recent {
		if len(f.State.Delta) != metrics {
			return fmt.Errorf("%w: recent state node %d delta has %d metrics, want %d",
				ErrBadState, f.State.Node, len(f.State.Delta), metrics)
		}
		if f.Diagnosis != nil && len(f.Diagnosis.Weights) != rank {
			return fmt.Errorf("%w: recent diagnosis for node %d has %d weights, model rank is %d",
				ErrBadState, f.State.Node, len(f.Diagnosis.Weights), rank)
		}
	}
	for _, es := range st.Epochs {
		for _, c := range es.Contribs {
			for _, rc := range c.Causes {
				if rc.Cause < 0 || rc.Cause >= rank {
					return fmt.Errorf("%w: epoch %d node %d cites cause %d outside model rank %d",
						ErrBadState, es.Epoch, c.Node, rc.Cause, rank)
				}
			}
		}
	}
	m.stats = st.Stats
	m.last = make(map[packet.NodeID]lastReport, len(st.Nodes))
	for _, ns := range st.Nodes {
		m.last[ns.Node] = lastReport{epoch: ns.Epoch, vector: append([]float64(nil), ns.Vector...)}
	}
	m.pending = make([]pendingState, len(st.Pending))
	for i, p := range st.Pending {
		m.pending[i] = pendingState{state: copyState(p.State), score: p.Score}
	}
	m.epochs = make(map[int]*epochAcc, len(st.Epochs))
	for _, es := range st.Epochs {
		ec := &epochAcc{epoch: es.Epoch, contribs: make([]Contribution, len(es.Contribs))}
		for i, c := range es.Contribs {
			ec.contribs[i] = Contribution{Node: c.Node, Causes: append([]vn2.RankedCause(nil), c.Causes...)}
		}
		m.epochs[es.Epoch] = ec
	}
	m.recent = make([]Flagged, len(st.Recent))
	for i, f := range st.Recent {
		m.recent[i] = copyFlagged(f)
	}
	if st.ModelVersion != 0 {
		m.version = st.ModelVersion
	}
	m.quar = nil
	for _, s := range st.Quarantine {
		m.quar = append(m.quar, copyState(s))
	}
	m.residuals = nil
	for _, s := range st.Residuals {
		m.residuals = append(m.residuals, resSample{rel: s.Rel, unattributed: s.Unattributed})
	}
	return nil
}
