package vn2

import (
	"fmt"
	"math"
	"sort"

	"github.com/wsn-tools/vn2/internal/mat"
	"github.com/wsn-tools/vn2/internal/nnls"
	"github.com/wsn-tools/vn2/internal/trace"
)

// RankedCause is one root cause with its inferred strength.
type RankedCause struct {
	// Cause indexes the model's root causes [0, Rank).
	Cause int `json:"cause"`
	// Strength is the non-negative correlation strength w_j.
	Strength float64 `json:"strength"`
}

// Diagnosis is the result of projecting one node state onto Ψ (Problem 3).
type Diagnosis struct {
	// Weights is the full correlation-strength vector w (length Rank).
	Weights []float64 `json:"weights"`
	// Ranked lists causes with non-zero strength, strongest first.
	Ranked []RankedCause `json:"ranked"`
	// Residual is ‖s − wΨ‖ in the normalized space: how much of the state
	// the basis could not explain.
	Residual float64 `json:"residual"`
}

// Normal reports whether the state needed essentially no root cause: the
// diagnosis of a healthy node, where "the variation xj ≈ 0" for all j.
func (d *Diagnosis) Normal(tol float64) bool {
	for _, w := range d.Weights {
		if w > tol {
			return false
		}
	}
	return true
}

// Dominant returns the strongest cause, or -1 for an all-zero diagnosis.
func (d *Diagnosis) Dominant() int {
	if len(d.Ranked) == 0 {
		return -1
	}
	return d.Ranked[0].Cause
}

// DiagnoseConfig tunes inference.
type DiagnoseConfig struct {
	// Solver selects the NNLS algorithm; zero-value uses the
	// multiplicative solver.
	Solver nnls.Solver
	// MaxIter bounds solver iterations; 0 uses 500.
	MaxIter int
	// MinStrength zeroes weights below it in the ranking; ≤0 uses 1e-6.
	MinStrength float64
	// Workers parallelizes batch diagnosis across this many goroutines;
	// 0 keeps it sequential and 1 or more fans out (negative uses
	// GOMAXPROCS). Results are identical for any value.
	Workers int
}

func (c DiagnoseConfig) withDefaults() DiagnoseConfig {
	if c.MinStrength <= 0 {
		c.MinStrength = 1e-6
	}
	return c
}

// Diagnose solves Problem 3 for one state with default configuration.
func (m *Model) Diagnose(state trace.StateVector) (*Diagnosis, error) {
	return m.DiagnoseWith(state, DiagnoseConfig{})
}

// DiagnoseWith solves argmin_w ‖s − wΨ‖² s.t. w ≥ 0 for one state and
// ranks the correlated root causes by strength.
func (m *Model) DiagnoseWith(state trace.StateVector, cfg DiagnoseConfig) (*Diagnosis, error) {
	if !m.trained() {
		return nil, ErrNotTrained
	}
	cfg = cfg.withDefaults()
	s, err := m.normalize(state.Delta)
	if err != nil {
		return nil, err
	}
	sol, err := nnls.Solve(s, m.Psi, nnls.Config{Solver: cfg.Solver, MaxIter: cfg.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("project state: %w", err)
	}
	return rankDiagnosis(sol.W, sol.Residual, cfg.MinStrength), nil
}

// DiagnoseBatch diagnoses many states, returning one Diagnosis per state.
func (m *Model) DiagnoseBatch(states []trace.StateVector, cfg DiagnoseConfig) ([]*Diagnosis, error) {
	if !m.trained() {
		return nil, ErrNotTrained
	}
	if len(states) == 0 {
		return nil, ErrNoStates
	}
	cfg = cfg.withDefaults()
	sm, err := statesMatrix(states, m.Scale)
	if err != nil {
		return nil, err
	}
	solverCfg := nnls.Config{Solver: cfg.Solver, MaxIter: cfg.MaxIter}
	// cfg.Workers passes straight through: nnls shares the par.Workers norm
	// (0 sequential, ≥1 fan-out, negative GOMAXPROCS), so no branch needed.
	weights, residuals, err := nnls.SolveBatchParallel(sm, m.Psi, solverCfg, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("project states: %w", err)
	}
	out := make([]*Diagnosis, len(states))
	for i := range states {
		out[i] = rankDiagnosis(weights.Row(i), residuals[i], cfg.MinStrength)
	}
	return out, nil
}

// NormalizedNorm returns ‖s‖ of a state delta in the model's normalized
// magnitude space — the denominator that turns a Diagnosis.Residual into a
// scale-free relative residual. A relative residual near 0 means the basis
// explains the state; near 1 means it explains essentially nothing (the
// drift signal the online monitor watches).
func (m *Model) NormalizedNorm(delta []float64) (float64, error) {
	if !m.trained() {
		return 0, ErrNotTrained
	}
	s, err := m.normalize(delta)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range s {
		sum += v * v
	}
	return math.Sqrt(sum), nil
}

func rankDiagnosis(w []float64, residual, minStrength float64) *Diagnosis {
	d := &Diagnosis{
		Weights:  append([]float64(nil), w...),
		Residual: residual,
	}
	for j, v := range w {
		if v >= minStrength {
			d.Ranked = append(d.Ranked, RankedCause{Cause: j, Strength: v})
		}
	}
	sort.Slice(d.Ranked, func(a, b int) bool {
		if d.Ranked[a].Strength != d.Ranked[b].Strength {
			return d.Ranked[a].Strength > d.Ranked[b].Strength
		}
		return d.Ranked[a].Cause < d.Ranked[b].Cause
	})
	return d
}

// CauseDistribution aggregates diagnoses into a per-cause total strength
// vector — the root-causes distribution plotted in Fig. 5(g–i) and
// Fig. 6(b).
func CauseDistribution(diagnoses []*Diagnosis, rank int) []float64 {
	out := make([]float64, rank)
	for _, d := range diagnoses {
		for _, rc := range d.Ranked {
			if rc.Cause < rank {
				out[rc.Cause] += rc.Strength
			}
		}
	}
	return out
}

// NormalizeDistribution scales a distribution to sum to 1 (when non-zero),
// making train/test distributions comparable as in Fig. 5(h)/(i).
func NormalizeDistribution(dist []float64) []float64 {
	var total float64
	for _, v := range dist {
		total += v
	}
	out := make([]float64, len(dist))
	if total == 0 {
		return out
	}
	for i, v := range dist {
		out[i] = v / total
	}
	return out
}

// CorrelationMatrix computes the exception×cause strength matrix for a set
// of states — the scatter data behind Fig. 3(c) and Fig. 5(b): entry (i,j)
// is the strength of cause j on exception i.
func (m *Model) CorrelationMatrix(states []trace.StateVector, cfg DiagnoseConfig) (*mat.Dense, error) {
	diags, err := m.DiagnoseBatch(states, cfg)
	if err != nil {
		return nil, err
	}
	out := mat.MustNew(len(diags), m.Rank)
	for i, d := range diags {
		out.SetRow(i, d.Weights)
	}
	return out, nil
}
