package vn2

import (
	"errors"
	"fmt"

	"github.com/wsn-tools/vn2/internal/mat"
)

// ErrEstimatorNotFitted reports prediction before Fit.
var ErrEstimatorNotFitted = errors.New("vn2: PRR estimator not fitted")

// PRREstimator maps an epoch's root-cause strength distribution to the
// system packet-reception ratio — the "protocol performance estimation"
// direction the paper lists as future work. It fits a ridge-regularized
// linear model PRR ≈ β₀ + Σⱼ βⱼ·strengthⱼ on historical epochs.
type PRREstimator struct {
	// Beta holds the fitted coefficients: Beta[0] is the intercept,
	// Beta[1..Rank] the per-cause slopes.
	Beta []float64 `json:"beta"`
	// Rank is the model's cause count.
	Rank int `json:"rank"`
	// Lambda is the ridge regularization used at fit time.
	Lambda float64 `json:"lambda"`
}

// FitPRR builds an estimator from per-epoch cause distributions and the
// corresponding observed PRR values. lambda ≤ 0 uses a small default
// suitable for collinear cause activity.
func FitPRR(distributions [][]float64, prr []float64, lambda float64) (*PRREstimator, error) {
	if len(distributions) == 0 {
		return nil, ErrNoStates
	}
	if len(distributions) != len(prr) {
		return nil, fmt.Errorf("%w: %d distributions vs %d PRR points",
			ErrStateLength, len(distributions), len(prr))
	}
	rank := len(distributions[0])
	if rank == 0 {
		return nil, ErrNoStates
	}
	if lambda <= 0 {
		lambda = 1e-3
	}
	// Design matrix with an intercept column.
	a := mat.MustNew(len(distributions), rank+1)
	for i, d := range distributions {
		if len(d) != rank {
			return nil, fmt.Errorf("%w: distribution %d has %d causes, want %d",
				ErrStateLength, i, len(d), rank)
		}
		row := a.RawRow(i)
		row[0] = 1
		copy(row[1:], d)
	}
	beta, err := mat.LeastSquares(a, prr, lambda)
	if err != nil {
		return nil, fmt.Errorf("fit PRR model: %w", err)
	}
	return &PRREstimator{Beta: beta, Rank: rank, Lambda: lambda}, nil
}

// Predict estimates the PRR for one epoch's cause distribution, clamped to
// [0, 1].
func (e *PRREstimator) Predict(distribution []float64) (float64, error) {
	if e == nil || len(e.Beta) == 0 {
		return 0, ErrEstimatorNotFitted
	}
	if len(distribution) != e.Rank {
		return 0, fmt.Errorf("%w: distribution %d, estimator %d",
			ErrStateLength, len(distribution), e.Rank)
	}
	p := e.Beta[0]
	for j, v := range distribution {
		p += e.Beta[j+1] * v
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// Score returns the coefficient of determination R² of the estimator on a
// labeled set — 1 is perfect, 0 no better than the mean.
func (e *PRREstimator) Score(distributions [][]float64, prr []float64) (float64, error) {
	if len(distributions) != len(prr) || len(prr) == 0 {
		return 0, fmt.Errorf("%w: %d vs %d", ErrStateLength, len(distributions), len(prr))
	}
	var mean float64
	for _, p := range prr {
		mean += p
	}
	mean /= float64(len(prr))
	var ssRes, ssTot float64
	for i, d := range distributions {
		pred, err := e.Predict(d)
		if err != nil {
			return 0, err
		}
		ssRes += (prr[i] - pred) * (prr[i] - pred)
		ssTot += (prr[i] - mean) * (prr[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}
