package vn2

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelFileVersion guards the serialized format.
const modelFileVersion = 1

// modelFile is the on-disk JSON envelope.
type modelFile struct {
	Version int    `json:"version"`
	Model   *Model `json:"model"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	if !m.trained() {
		return ErrNotTrained
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(modelFile{Version: modelFileVersion, Model: m}); err != nil {
		return fmt.Errorf("encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("vn2: unsupported model version %d", mf.Version)
	}
	if !mf.Model.trained() {
		return nil, ErrNotTrained
	}
	if mf.Model.Psi.Rows() != mf.Model.Rank {
		return nil, fmt.Errorf("vn2: basis has %d rows, rank says %d", mf.Model.Psi.Rows(), mf.Model.Rank)
	}
	if mf.Model.Psi.Cols() != len(mf.Model.Scale) {
		return nil, fmt.Errorf("vn2: basis has %d columns, scale has %d", mf.Model.Psi.Cols(), len(mf.Model.Scale))
	}
	return mf.Model, nil
}
