package vn2

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrCorruptModel reports a model file whose fields are mutually
// inconsistent (e.g. a Signatures matrix that does not match the basis
// dims) — the kind of damage hand-editing or truncation produces.
var ErrCorruptModel = errors.New("vn2: corrupt model file")

// modelFileVersion guards the serialized format.
const modelFileVersion = 1

// ModelMeta is the optional lifecycle envelope persisted next to a model:
// which generation of a long-lived deployment's model this is, what it was
// derived from, and when. Files written without meta (every pre-lifecycle
// model) load with a zero ModelMeta; files written with meta load fine in
// older readers, which simply ignore the field.
type ModelMeta struct {
	// ModelVersion is the monotonically increasing generation number a
	// serving deployment assigns on every accepted hot-swap. 0 means the
	// file predates the lifecycle (treated as generation 1 by serve).
	ModelVersion uint64 `json:"model_version,omitempty"`
	// Parent is the generation this model was warm-started from via Update
	// (0 for a cold-trained model).
	Parent uint64 `json:"parent,omitempty"`
	// Origin records how the model was produced: "train", "update", or
	// "rollback".
	Origin string `json:"origin,omitempty"`
	// SavedAt is when the file was written.
	SavedAt time.Time `json:"saved_at,omitempty"`
}

// zero reports whether the meta carries no information (so Save can omit
// the field entirely and stay byte-compatible with pre-lifecycle files).
func (mm ModelMeta) zero() bool {
	return mm.ModelVersion == 0 && mm.Parent == 0 && mm.Origin == "" && mm.SavedAt.IsZero()
}

// modelFile is the on-disk JSON envelope.
type modelFile struct {
	Version int        `json:"version"`
	Meta    *ModelMeta `json:"meta,omitempty"`
	Model   *Model     `json:"model"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	return m.SaveVersioned(w, ModelMeta{})
}

// SaveVersioned writes the model together with its lifecycle meta. A zero
// meta produces exactly the bytes Save always produced.
func (m *Model) SaveVersioned(w io.Writer, meta ModelMeta) error {
	if !m.trained() {
		return ErrNotTrained
	}
	mf := modelFile{Version: modelFileVersion, Model: m}
	if !meta.zero() {
		mf.Meta = &meta
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(mf); err != nil {
		return fmt.Errorf("encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save, discarding any lifecycle meta.
func Load(r io.Reader) (*Model, error) {
	m, _, err := LoadVersioned(r)
	return m, err
}

// LoadVersioned reads a model written by Save or SaveVersioned, returning
// the lifecycle meta alongside it (zero for files written without one).
func LoadVersioned(r io.Reader) (*Model, ModelMeta, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, ModelMeta{}, fmt.Errorf("decode model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, ModelMeta{}, fmt.Errorf("vn2: unsupported model version %d", mf.Version)
	}
	if !mf.Model.trained() {
		return nil, ModelMeta{}, ErrNotTrained
	}
	if mf.Model.Psi.Rows() != mf.Model.Rank {
		return nil, ModelMeta{}, fmt.Errorf("vn2: basis has %d rows, rank says %d", mf.Model.Psi.Rows(), mf.Model.Rank)
	}
	if mf.Model.Psi.Cols() != len(mf.Model.Scale) {
		return nil, ModelMeta{}, fmt.Errorf("vn2: basis has %d columns, scale has %d", mf.Model.Psi.Cols(), len(mf.Model.Scale))
	}
	// The optional fields must agree with the basis dims too; a corrupt or
	// hand-edited file with, say, a short Signatures matrix would otherwise
	// load fine and panic later inside Signature/Explain.
	m := mf.Model
	cols := m.Psi.Cols()
	if m.Signatures != nil {
		if m.Signatures.Rows() != m.Rank || m.Signatures.Cols() != cols {
			return nil, ModelMeta{}, fmt.Errorf("%w: signatures are %dx%d, want %dx%d",
				ErrCorruptModel, m.Signatures.Rows(), m.Signatures.Cols(), m.Rank, cols)
		}
	}
	if m.MetricNames != nil && len(m.MetricNames) != cols {
		return nil, ModelMeta{}, fmt.Errorf("%w: %d metric names for %d metrics",
			ErrCorruptModel, len(m.MetricNames), cols)
	}
	for j := range m.Labels {
		if j < 0 || j >= m.Rank {
			return nil, ModelMeta{}, fmt.Errorf("%w: label for cause %d outside rank %d",
				ErrCorruptModel, j, m.Rank)
		}
	}
	var meta ModelMeta
	if mf.Meta != nil {
		meta = *mf.Meta
	}
	return m, meta, nil
}
