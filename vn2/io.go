package vn2

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrCorruptModel reports a model file whose fields are mutually
// inconsistent (e.g. a Signatures matrix that does not match the basis
// dims) — the kind of damage hand-editing or truncation produces.
var ErrCorruptModel = errors.New("vn2: corrupt model file")

// modelFileVersion guards the serialized format.
const modelFileVersion = 1

// modelFile is the on-disk JSON envelope.
type modelFile struct {
	Version int    `json:"version"`
	Model   *Model `json:"model"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	if !m.trained() {
		return ErrNotTrained
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(modelFile{Version: modelFileVersion, Model: m}); err != nil {
		return fmt.Errorf("encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("vn2: unsupported model version %d", mf.Version)
	}
	if !mf.Model.trained() {
		return nil, ErrNotTrained
	}
	if mf.Model.Psi.Rows() != mf.Model.Rank {
		return nil, fmt.Errorf("vn2: basis has %d rows, rank says %d", mf.Model.Psi.Rows(), mf.Model.Rank)
	}
	if mf.Model.Psi.Cols() != len(mf.Model.Scale) {
		return nil, fmt.Errorf("vn2: basis has %d columns, scale has %d", mf.Model.Psi.Cols(), len(mf.Model.Scale))
	}
	// The optional fields must agree with the basis dims too; a corrupt or
	// hand-edited file with, say, a short Signatures matrix would otherwise
	// load fine and panic later inside Signature/Explain.
	m := mf.Model
	cols := m.Psi.Cols()
	if m.Signatures != nil {
		if m.Signatures.Rows() != m.Rank || m.Signatures.Cols() != cols {
			return nil, fmt.Errorf("%w: signatures are %dx%d, want %dx%d",
				ErrCorruptModel, m.Signatures.Rows(), m.Signatures.Cols(), m.Rank, cols)
		}
	}
	if m.MetricNames != nil && len(m.MetricNames) != cols {
		return nil, fmt.Errorf("%w: %d metric names for %d metrics",
			ErrCorruptModel, len(m.MetricNames), cols)
	}
	for j := range m.Labels {
		if j < 0 || j >= m.Rank {
			return nil, fmt.Errorf("%w: label for cause %d outside rank %d",
				ErrCorruptModel, j, m.Rank)
		}
	}
	return m, nil
}
