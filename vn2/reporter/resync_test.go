package reporter

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"github.com/wsn-tools/vn2/internal/trace"
)

// runWorkload drives recs through a fresh reporter against sink, flushing
// after every epoch's worth of reports (nodes per flush), the way a
// production poller would.
func runWorkload(t *testing.T, sink *fakeSink, recs []trace.Record, nodes int, cfg Config) Stats {
	t.Helper()
	cfg.Addr = sink.addr()
	r := newTestReporter(t, cfg)
	for i, rec := range recs {
		r.Report(rec)
		if (i+1)%nodes == 0 {
			if err := r.Flush(context.Background()); err != nil {
				t.Fatalf("flush after record %d: %v", i+1, err)
			}
		}
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	return r.Stats()
}

// mustJSON marshals the absorbed record stream for bit-exact comparison —
// float64 round-trips exactly through encoding/json's shortest-form
// formatting, so equal strings mean equal bits.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestResyncBitExact is the delta-baseline resync contract end to end: a
// run whose deliveries are hit with every fault shape — NACKs that never
// touched the sink's cache, connection cuts before AND after the commit,
// busy-sheds that committed the cache but shed the queue — must leave the
// sink with a bit-identical absorbed record stream to an uninterrupted run.
// The reporter's only tools are the ones the protocol gives it: Forget,
// full re-encode, retransmit; the sink's duplicate/stale absorption does
// the rest.
func TestResyncBitExact(t *testing.T) {
	const nodes, epochs = 4, 8
	recs := workload(nodes, epochs)

	clean := newFakeSink(t)
	runWorkload(t, clean, recs, nodes, Config{})
	want := mustJSON(t, clean.snapshot())

	scripts := map[string][]fakeBehavior{
		"nack-bad-early":   {behaveAck, behaveNackBad},
		"cut-after-commit": {behaveAck, behaveAck, behaveCutAfterCommit},
		"cut-before-commit": {
			behaveAck, behaveCutBeforeCommit,
		},
		"busy-shed": {behaveAck, behaveNackBusy, behaveNackBusy},
		"gauntlet": {
			behaveNackBad,         // frame 1: rejected before any baseline existed
			behaveAck,             // frame 2 (retry of 1): clean
			behaveCutAfterCommit,  // frame 3: committed, ACK lost → duplicate retransmit
			behaveNackBusy,        // frame 4 (retry of 3): committed AGAIN, shed
			behaveAck,             // frame 5 (retry of 3): triple-delivered, absorbed
			behaveCutBeforeCommit, // frame 6: vanished entirely
			behaveAck,             // ...
			behaveNackBad,
			behaveCutAfterCommit,
		},
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			faulty := newFakeSink(t)
			faulty.program(script...)
			st := runWorkload(t, faulty, recs, nodes, Config{Seed: 7})
			got := mustJSON(t, faulty.snapshot())
			if got != want {
				t.Fatalf("absorbed stream diverged from the uninterrupted run\nclean:  %s\nfaulty: %s", want, got)
			}
			faults := 0
			for _, b := range script {
				if b != behaveAck {
					faults++
				}
			}
			if faults > 0 && st.Retries == 0 {
				t.Fatalf("script injected %d faults but the reporter never retried: %+v", faults, st)
			}
		})
	}
}

// TestResyncAfterSinkRestart: the sink dies (listener torn down, cache
// lost) and comes back cold at a new address. The reporter's reconnect path
// must Forget — its baselines describe a cache that no longer exists — and
// the absorbed stream across both incarnations must equal the uninterrupted
// run's.
func TestResyncAfterSinkRestart(t *testing.T) {
	const nodes, epochs = 3, 6
	recs := workload(nodes, epochs)

	clean := newFakeSink(t)
	runWorkload(t, clean, recs, nodes, Config{})
	want := mustJSON(t, clean.snapshot())

	first := newFakeSink(t)
	var second *fakeSink
	r := newTestReporter(t, Config{
		Dial: func() (net.Conn, error) {
			if second != nil {
				return net.Dial("tcp", second.addr())
			}
			return net.Dial("tcp", first.addr())
		},
		RetryMin: time.Millisecond,
		RetryMax: 10 * time.Millisecond,
	})
	half := len(recs) / 2
	for i, rec := range recs[:half] {
		r.Report(rec)
		if (i+1)%nodes == 0 {
			if err := r.Flush(context.Background()); err != nil {
				t.Fatalf("first-half flush: %v", err)
			}
		}
	}
	// kill -9: listener and live connections die mid-run; the replacement
	// has a cold delta cache.
	first.stop()
	second = newFakeSink(t)
	for i, rec := range recs[half:] {
		r.Report(rec)
		if (i+1)%nodes == 0 {
			if err := r.Flush(context.Background()); err != nil {
				t.Fatalf("second-half flush: %v", err)
			}
		}
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	merged := append(first.snapshot(), second.snapshot()...)
	if got := mustJSON(t, merged); got != want {
		t.Fatalf("restart run diverged\nclean: %s\ngot:   %s", want, got)
	}
	if st := r.Stats(); st.Redials < 2 {
		t.Fatalf("redials %d, want ≥ 2 (initial + post-restart)", st.Redials)
	}
}
