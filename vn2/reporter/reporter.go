// Package reporter is the production client for the sink's persistent
// frame-stream ingest edge (vn2 serve -stream-addr). It batches reports into
// delta-encoded VN2F frames, keeps one long-lived TCP connection, and treats
// every failure the same way the protocol demands: after ANY non-ACK outcome
// — an I/O error, a NACK, a reconnect — the sink's delta cache is in an
// unknown state relative to the client's baselines, so the encoder Forgets
// and the batch is retransmitted fully materialized, the one encoding
// correct against either state.
//
// Reports accumulate in a bounded in-memory spill queue, so a sink outage
// never grows the client without bound: at SpillCap the oldest report is
// dropped and counted. Delivery retries with decorrelated-jitter backoff
// (internal/retry, keyed by Config.Seed — bit-identical sequences for
// identical configs), and a circuit breaker trips after BreakerThreshold
// consecutive batch failures so a dead sink costs one fast error per Flush
// instead of a full retry ladder.
package reporter

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/retry"
	"github.com/wsn-tools/vn2/internal/trace"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultMaxBatch  = 64
	DefaultSpillCap  = 4096
	DefaultIOTimeout = 10 * time.Second
	DefaultAttempts  = 8

	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// reporterRetryTag keys the backoff jitter stream (see internal/rng).
const reporterRetryTag = 0xd1a7_0001

// ErrBreakerOpen is returned by Flush while the circuit breaker is open:
// the sink has failed BreakerThreshold consecutive deliveries and the
// cooldown has not yet elapsed. Reports keep spilling locally; the caller
// should keep calling Flush on its normal cadence — the first Flush after
// the cooldown probes the sink (half-open) and closes the breaker on
// success.
var ErrBreakerOpen = errors.New("reporter: circuit breaker open")

// Config parametrizes a Reporter. Addr or Dial must be set.
type Config struct {
	// Addr is the sink's stream address, dialed over TCP. Ignored when
	// Dial is set.
	Addr string
	// Dial overrides the dialer; chaos harnesses inject fault wrappers
	// here.
	Dial func() (net.Conn, error)

	// MaxBatch caps records per frame (0 = 64, max 65535).
	MaxBatch int
	// SpillCap bounds the in-memory spill queue; at the cap the OLDEST
	// report is dropped and SpillDrops incremented (0 = 4096).
	SpillCap int
	// IOTimeout bounds each frame write and each response read. Always
	// measured on the wall clock, never Config.Now — deadlines are enforced
	// by the kernel (0 = 10s).
	IOTimeout time.Duration

	// RetryMin/RetryMax bound the decorrelated-jitter backoff
	// (0 = internal/retry defaults). Attempts caps delivery attempts per
	// batch (0 = 8).
	RetryMin, RetryMax time.Duration
	Attempts           int

	// BreakerThreshold is the consecutive failed batches that open the
	// breaker (0 = 5); BreakerCooldown how long it stays open before a
	// half-open probe (0 = 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Seed keys the jitter stream: equal seeds give bit-identical backoff
	// sequences.
	Seed uint64
	// Sleep is the backoff sleeper (nil = time.Sleep); tests and the chaos
	// harness inject no-ops.
	Sleep func(time.Duration)
	// Now is the breaker's clock (nil = time.Now); tests inject a fake to
	// step the cooldown deterministically.
	Now func() time.Time
}

// Stats is a point-in-time snapshot of the reporter's counters.
type Stats struct {
	Buffered       int    // reports waiting in the spill queue
	SpillDrops     uint64 // oldest-dropped reports (queue hit SpillCap)
	SpillHighWater int    // max spill-queue depth ever observed
	Frames         uint64 // frames ACKed
	Records        uint64 // records ACKed
	Nacks          uint64 // NACK responses received
	Retries        uint64 // delivery attempts beyond each batch's first
	Redials        uint64 // connections established
	BreakerTrips   uint64 // closed/half-open → open transitions
	BreakerState   string // "closed" | "open" | "half-open"
}

// Reporter is the stream client. Report may be called concurrently with
// Flush; Flush calls are serialized internally.
type Reporter struct {
	cfg   Config
	sleep func(time.Duration)
	now   func() time.Time

	mu                                       sync.Mutex // guards queue, counters, breaker
	buf                                      []trace.Record
	peeked                                   int // in-flight batch head still in buf (shrunk by oldest-drop)
	drops                                    uint64
	hwm                                      int
	frames, records, nacks, retries, redials uint64
	br                                       breaker

	sendMu  sync.Mutex // serializes Flush; guards conn/enc/resync
	conn    net.Conn
	enc     *packet.FrameEncoder
	resync  bool // next frame must Forget + full-encode
	backoff *retry.Backoff
	respBuf []byte
	// hint is the sink's retry-after from the last NACK (VN2A byte 5),
	// consumed by the next inter-attempt sleep. Only the delivery goroutine
	// (under sendMu) touches it.
	hint time.Duration
}

// New validates cfg, applies defaults, and returns a Reporter. No
// connection is made until the first Flush with queued reports.
func New(cfg Config) (*Reporter, error) {
	if cfg.Addr == "" && cfg.Dial == nil {
		return nil, errors.New("reporter: Config.Addr or Config.Dial required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBatch > packet.MaxFrameRecords {
		cfg.MaxBatch = packet.MaxFrameRecords
	}
	if cfg.SpillCap <= 0 {
		cfg.SpillCap = DefaultSpillCap
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = DefaultIOTimeout
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = DefaultAttempts
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	r := &Reporter{
		cfg:     cfg,
		sleep:   cfg.Sleep,
		now:     cfg.Now,
		enc:     packet.NewFrameEncoder(),
		backoff: retry.New(cfg.RetryMin, cfg.RetryMax, reporterRetryTag, cfg.Seed),
		respBuf: make([]byte, packet.StreamRespLen),
	}
	if r.now == nil {
		r.now = time.Now
	}
	r.br = breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown}
	return r, nil
}

// Report queues one report for delivery. At SpillCap the oldest queued
// report is dropped to make room — bounded memory beats unbounded growth
// during a long sink outage; the drop is counted, never silent. The record's
// Vector is stored as given and must not be mutated by the caller
// afterwards.
func (r *Reporter) Report(rec trace.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) >= r.cfg.SpillCap {
		r.buf = r.buf[1:]
		r.drops++
		if r.peeked > 0 {
			// The dropped report was part of the batch Flush has in flight;
			// its ACK (or abandonment) must not pop a survivor in its place.
			r.peeked--
		}
	}
	r.buf = append(r.buf, rec)
	if len(r.buf) > r.hwm {
		r.hwm = len(r.buf)
	}
	// append never reuses r.buf[1:]'s vacated slot, so the backing array
	// creeps; re-home the queue once the dead prefix dominates.
	if cap(r.buf) > 2*r.cfg.SpillCap && len(r.buf) <= r.cfg.SpillCap {
		r.buf = append(make([]trace.Record, 0, r.cfg.SpillCap), r.buf...)
	}
}

// Buffered returns the current spill-queue depth.
func (r *Reporter) Buffered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Flush drives the spill queue to empty: peek up to MaxBatch reports,
// deliver the frame with retries, pop on ACK, repeat. Reports are popped
// only after the sink's ACK (which the sink sends only after the fsync), so
// a failure mid-flush loses nothing — the batch stays queued for the next
// Flush. Returns ErrBreakerOpen without touching the network while the
// breaker is open.
func (r *Reporter) Flush(ctx context.Context) error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	for {
		batch := r.peek()
		if len(batch) == 0 {
			return nil
		}
		if err := r.allow(); err != nil {
			r.unpeek()
			return err
		}
		if err := r.sendBatch(ctx, batch); err != nil {
			r.deliveryFailed()
			r.unpeek()
			return err
		}
		r.deliverySucceeded(len(batch))
		r.pop()
	}
}

// Close drops the connection. Queued reports stay queued; a later Flush
// redials.
func (r *Reporter) Close() error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	r.dropConn()
	return nil
}

// Stats snapshots the counters.
func (r *Reporter) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Buffered:       len(r.buf),
		SpillDrops:     r.drops,
		SpillHighWater: r.hwm,
		Frames:         r.frames,
		Records:        r.records,
		Nacks:          r.nacks,
		Retries:        r.retries,
		Redials:        r.redials,
		BreakerTrips:   r.br.trips,
		BreakerState:   r.br.stateName(),
	}
}

// peek marks up to MaxBatch head reports as in flight and returns them.
// They remain queued until pop; Report's oldest-drop shrinks the in-flight
// head count instead of popping survivors out from under it.
func (r *Reporter) peek() []trace.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if n > r.cfg.MaxBatch {
		n = r.cfg.MaxBatch
	}
	r.peeked = n
	return r.buf[:n]
}

// pop removes the in-flight head after an ACK.
func (r *Reporter) pop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[r.peeked:]
	r.peeked = 0
}

// unpeek abandons the in-flight claim after a failed delivery; the batch
// stays queued.
func (r *Reporter) unpeek() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peeked = 0
}

func (r *Reporter) allow() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.br.allow(r.now())
}

func (r *Reporter) deliveryFailed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.br.fail(r.now())
}

func (r *Reporter) deliverySucceeded(records int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.br.success()
	r.frames++
	r.records += uint64(records)
}

// sendBatch runs one batch through the retry ladder. The FIRST attempt may
// delta-encode against the encoder's baselines; every retry — and every
// attempt after a reconnect or NACK — Forgets and re-encodes fully, because
// encoding itself advances the client baselines whether or not the sink
// ever committed the frame.
func (r *Reporter) sendBatch(ctx context.Context, batch []trace.Record) error {
	first := true
	r.hint = 0
	// Honor the sink's retry-after hint: the jittered delay is raised to at
	// least what the sink asked for, matching how an HTTP client treats the
	// 503 Retry-After header. Jitter still applies above the floor, so a
	// fleet of hinted reporters does not reconverge in lockstep.
	sleep := r.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	hinted := func(d time.Duration) {
		if r.hint > d {
			d = r.hint
		}
		r.hint = 0
		sleep(d)
	}
	return retry.Do(ctx, r.backoff, r.cfg.Attempts, hinted, func() error {
		if !first {
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
			r.resync = true
		}
		first = false
		return r.attempt(batch)
	})
}

// attempt delivers the batch once over the persistent connection.
func (r *Reporter) attempt(batch []trace.Record) error {
	if r.conn == nil {
		c, err := r.dial()
		if err != nil {
			r.resync = true
			return err
		}
		r.conn = c
		// A fresh connection says nothing about the sink's cache — it may be
		// a restarted sink with a cold cache. Assume nothing.
		r.resync = true
		r.mu.Lock()
		r.redials++
		r.mu.Unlock()
	}

	frame, err := r.encode(batch)
	if err != nil {
		return err // encoding bug, not a transport fault
	}

	c := r.conn
	c.SetWriteDeadline(time.Now().Add(r.cfg.IOTimeout))
	if _, err := c.Write(frame); err != nil {
		r.dropConn()
		return fmt.Errorf("reporter: write frame: %w", err)
	}
	c.SetReadDeadline(time.Now().Add(r.cfg.IOTimeout))
	resp, err := packet.ReadStreamResp(c, r.respBuf)
	if err != nil {
		// The frame may well have been committed; only the ACK is lost.
		// Retrying full-encoded is correct against either outcome — the
		// sink's monitor absorbs the duplicates.
		r.dropConn()
		return fmt.Errorf("reporter: read response: %w", err)
	}

	switch resp.Status {
	case packet.StreamAck:
		r.resync = false
		return nil
	case packet.StreamNackBusy:
		r.noteNack()
		r.hint = time.Duration(resp.RetryAfter) * time.Second
		return fmt.Errorf("reporter: sink busy: %d/%d records accepted", resp.Accepted, len(batch))
	case packet.StreamNackBad:
		r.noteNack()
		return fmt.Errorf("reporter: sink rejected frame as bad")
	default:
		r.noteNack()
		r.hint = time.Duration(resp.RetryAfter) * time.Second
		return fmt.Errorf("reporter: sink unavailable")
	}
}

// noteNack counts a NACK and schedules a resync: whatever state the NACK
// left the sink's cache in, the next frame must not delta against it. The
// connection itself stays up — NACKs are in-band, not connection-fatal.
func (r *Reporter) noteNack() {
	r.resync = true
	r.mu.Lock()
	r.nacks++
	r.mu.Unlock()
}

// encode builds the batch's frame. On resync it Forgets first, so no record
// deltas against a baseline from an earlier frame — each node's first record
// in this frame goes out fully materialized. Later records of the same node
// may still delta against that first one: intra-frame bases are
// reconstructed by the decoder inside the same all-or-nothing commit, so
// they carry no cross-frame state to be wrong about.
func (r *Reporter) encode(batch []trace.Record) ([]byte, error) {
	r.enc.Reset()
	if r.resync {
		r.enc.Forget()
	}
	for i := range batch {
		if err := r.enc.Add(batch[i].Node, batch[i].Epoch, batch[i].Vector); err != nil {
			return nil, fmt.Errorf("reporter: encode record %d: %w", i, err)
		}
	}
	return r.enc.Frame()
}

func (r *Reporter) dial() (net.Conn, error) {
	if r.cfg.Dial != nil {
		return r.cfg.Dial()
	}
	return net.DialTimeout("tcp", r.cfg.Addr, r.cfg.IOTimeout)
}

func (r *Reporter) dropConn() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.resync = true
}
