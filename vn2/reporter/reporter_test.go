package reporter

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/wsn-tools/vn2/internal/packet"
	"github.com/wsn-tools/vn2/internal/trace"
	"github.com/wsn-tools/vn2/vn2/sink/ingest"
)

// fakeBehavior scripts how the fake sink answers one incoming frame. The
// distinction that matters is WHERE the fault lands relative to the commit:
// a NACK-bad never touched the cache, a cut-after-commit committed but the
// ACK died on the wire — the client cannot tell these apart, which is
// exactly why the protocol demands Forget + full re-encode on any non-ACK.
type fakeBehavior int

const (
	behaveAck             fakeBehavior = iota
	behaveNackBad                      // no decode, respond NackBad (the CRC-failure shape)
	behaveNackBusy                     // decode + commit, respond NackBusy (the shed shape)
	behaveCutBeforeCommit              // drop the conn without decoding
	behaveCutAfterCommit               // decode + commit, drop the conn without responding
)

// fakeSink is a scriptable stream peer: a real TCP listener speaking the
// VN2F frame + 8-byte response protocol, backed by the sink's own
// delta-cache decoder and a monitor-style absorber (per-node last-epoch
// watermark; duplicates and stale reports vanish). What survives absorption
// is the ground truth tests compare bit-exactly across runs.
type fakeSink struct {
	t  *testing.T
	ln net.Listener

	mu         sync.Mutex
	dec        *ingest.BinaryDecoder
	script     []fakeBehavior
	last       map[packet.NodeID]int
	accepted   []trace.Record
	frames     int
	conns      map[net.Conn]struct{}
	retryAfter int // hint attached to NACK responses (seconds)
}

func newFakeSink(t *testing.T) *fakeSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeSink{
		t:     t,
		ln:    ln,
		dec:   ingest.NewBinaryDecoder(),
		last:  make(map[packet.NodeID]int),
		conns: make(map[net.Conn]struct{}),
	}
	go f.serve()
	t.Cleanup(f.stop)
	return f
}

func (f *fakeSink) addr() string { return f.ln.Addr().String() }

// stop kills the listener AND every live connection — closing only the
// listener would leave established conns serving, which is not what a dead
// sink looks like.
func (f *fakeSink) stop() {
	f.ln.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	for c := range f.conns {
		c.Close()
	}
}

// program appends behaviors to the script; frames beyond the script ACK.
func (f *fakeSink) program(bs ...fakeBehavior) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = append(f.script, bs...)
}

func (f *fakeSink) next() fakeBehavior {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.script) == 0 {
		return behaveAck
	}
	b := f.script[0]
	f.script = f.script[1:]
	return b
}

func (f *fakeSink) serve() {
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return
		}
		go f.handle(c)
	}
}

func (f *fakeSink) handle(c net.Conn) {
	f.mu.Lock()
	f.conns[c] = struct{}{}
	f.mu.Unlock()
	defer func() {
		c.Close()
		f.mu.Lock()
		delete(f.conns, c)
		f.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	var buf []byte
	for {
		frame, err := packet.ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = frame
		switch b := f.next(); b {
		case behaveNackBad:
			f.respond(c, packet.StreamNackBad, 0)
		case behaveCutBeforeCommit:
			return
		default:
			n, err := f.commit(frame)
			if err != nil {
				f.respond(c, packet.StreamNackBad, 0)
				continue
			}
			switch b {
			case behaveCutAfterCommit:
				return
			case behaveNackBusy:
				f.respond(c, packet.StreamNackBusy, n/2)
			default:
				f.respond(c, packet.StreamAck, n)
			}
		}
	}
}

func (f *fakeSink) commit(frame []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	recs, err := f.dec.Decode(frame)
	if err != nil {
		return 0, err
	}
	f.frames++
	for _, rec := range recs {
		if prev, ok := f.last[rec.Node]; ok && rec.Epoch <= prev {
			continue // duplicate or stale: absorbed, monitor-style
		}
		f.last[rec.Node] = rec.Epoch
		rec.Vector = append([]float64(nil), rec.Vector...)
		f.accepted = append(f.accepted, rec)
	}
	return len(recs), nil
}

func (f *fakeSink) respond(c net.Conn, st packet.StreamStatus, accepted int) {
	ra := 0
	if st != packet.StreamAck {
		f.mu.Lock()
		ra = f.retryAfter
		f.mu.Unlock()
	}
	c.Write(packet.AppendStreamResp(nil, packet.StreamResp{Status: st, Accepted: accepted, RetryAfter: ra}))
}

// snapshot returns the absorbed record stream for bit-exact comparison.
func (f *fakeSink) snapshot() []trace.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]trace.Record(nil), f.accepted...)
}

// workload builds a deterministic multi-epoch multi-node report stream with
// mostly-constant vectors, so consecutive epochs delta-encode tightly.
func workload(nodes, epochs int) []trace.Record {
	recs := make([]trace.Record, 0, nodes*epochs)
	for e := 1; e <= epochs; e++ {
		for n := 0; n < nodes; n++ {
			vec := make([]float64, 8)
			for k := range vec {
				vec[k] = float64(100*n + k)
			}
			vec[e%8] += float64(e) // one entry drifts per epoch
			recs = append(recs, trace.Record{Node: packet.NodeID(n + 1), Epoch: e, Vector: vec})
		}
	}
	return recs
}

func noSleep(time.Duration) {}

func newTestReporter(t *testing.T, cfg Config) *Reporter {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = noSleep
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 5 * time.Second
	}
	if cfg.RetryMin == 0 {
		cfg.RetryMin = time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 10 * time.Millisecond
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestReporterHappyPath(t *testing.T) {
	sink := newFakeSink(t)
	r := newTestReporter(t, Config{Addr: sink.addr()})
	recs := workload(4, 6)
	for _, rec := range recs {
		r.Report(rec)
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := r.Stats()
	if st.Buffered != 0 || st.Records != uint64(len(recs)) || st.Nacks != 0 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.BreakerState != "closed" {
		t.Fatalf("breaker %q, want closed", st.BreakerState)
	}
	if got := sink.snapshot(); len(got) != len(recs) {
		t.Fatalf("sink absorbed %d records, want %d", len(got), len(recs))
	}
	if sink.dec.Deltas() == 0 {
		t.Fatal("no delta records on the wire; the happy path exercised only full encoding")
	}
	if st.SpillHighWater != len(recs) {
		t.Fatalf("high water %d, want %d", st.SpillHighWater, len(recs))
	}
}

func TestReporterSpillBound(t *testing.T) {
	dials := 0
	r := newTestReporter(t, Config{
		Dial:     func() (net.Conn, error) { dials++; return nil, errors.New("sink down") },
		SpillCap: 16,
		Attempts: 2,
	})
	recs := workload(1, 24) // 24 reports through a 16-slot queue
	for _, rec := range recs {
		r.Report(rec)
	}
	st := r.Stats()
	if st.Buffered != 16 || st.SpillDrops != 8 || st.SpillHighWater != 16 {
		t.Fatalf("stats %+v, want buffered 16, drops 8, high water 16", st)
	}
	err := r.Flush(context.Background())
	if err == nil {
		t.Fatal("Flush against a dead sink succeeded")
	}
	if dials == 0 {
		t.Fatal("Flush never dialed")
	}
	// Nothing was lost to the failure itself: the batch stays queued.
	if got := r.Buffered(); got != 16 {
		t.Fatalf("post-failure buffered %d, want 16", got)
	}
	// The survivors are the NEWEST reports (oldest-drop).
	r.mu.Lock()
	first := r.buf[0].Epoch
	r.mu.Unlock()
	if first != 9 {
		t.Fatalf("oldest surviving epoch %d, want 9 (epochs 1..8 dropped)", first)
	}
}

func TestReporterBreaker(t *testing.T) {
	sink := newFakeSink(t)
	clock := time.Unix(0, 0)
	down := true
	dials := 0
	r := newTestReporter(t, Config{
		Dial: func() (net.Conn, error) {
			dials++
			if down {
				return nil, errors.New("sink down")
			}
			return net.Dial("tcp", sink.addr())
		},
		Attempts:         1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Now:              func() time.Time { return clock },
	})
	for _, rec := range workload(2, 2) {
		r.Report(rec)
	}

	// Two failed batches open the breaker.
	for i := 0; i < 2; i++ {
		if err := r.Flush(context.Background()); err == nil {
			t.Fatalf("flush %d against dead sink succeeded", i)
		}
	}
	st := r.Stats()
	if st.BreakerState != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after threshold: %+v", st)
	}

	// While open, Flush fails fast without touching the network.
	preDials := dials
	if err := r.Flush(context.Background()); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: err %v, want ErrBreakerOpen", err)
	}
	if dials != preDials {
		t.Fatalf("open breaker dialed (%d → %d)", preDials, dials)
	}

	// Cooldown elapses → half-open probe; still down → reopens immediately.
	clock = clock.Add(2 * time.Minute)
	if err := r.Flush(context.Background()); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open probe: err %v, want a dial failure", err)
	}
	if st := r.Stats(); st.BreakerState != "open" || st.BreakerTrips != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	if err := r.Flush(context.Background()); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker did not reopen after the failed probe")
	}

	// Sink recovers; the next post-cooldown probe closes the breaker and
	// the queue drains completely.
	down = false
	clock = clock.Add(2 * time.Minute)
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("recovery flush: %v", err)
	}
	st = r.Stats()
	if st.BreakerState != "closed" || st.Buffered != 0 {
		t.Fatalf("after recovery: %+v", st)
	}
	if got := sink.snapshot(); len(got) != 4 {
		t.Fatalf("sink absorbed %d records, want 4", len(got))
	}
}

func TestReporterBatchSplitting(t *testing.T) {
	sink := newFakeSink(t)
	r := newTestReporter(t, Config{Addr: sink.addr(), MaxBatch: 5})
	recs := workload(4, 3) // 12 records → frames of 5, 5, 2
	for _, rec := range recs {
		r.Report(rec)
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := r.Stats(); st.Frames != 3 {
		t.Fatalf("frames %d, want 3", st.Frames)
	}
	if got := sink.snapshot(); len(got) != len(recs) {
		t.Fatalf("sink absorbed %d, want %d", len(got), len(recs))
	}
}

// TestReporterRetryAfterHint: a NACK-busy carrying a retry-after hint
// raises the next inter-attempt sleep to at least the hinted duration —
// the jitter bounds alone (RetryMax 10ms in newTestReporter) could never
// reach it — and the hint is consumed, so the following sleeps fall back
// to the jittered ladder.
func TestReporterRetryAfterHint(t *testing.T) {
	sink := newFakeSink(t)
	sink.mu.Lock()
	sink.retryAfter = 3
	sink.mu.Unlock()
	sink.program(behaveNackBusy, behaveNackBusy)

	var mu sync.Mutex
	var slept []time.Duration
	r := newTestReporter(t, Config{
		Addr: sink.addr(),
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	recs := workload(2, 2)
	for _, rec := range recs {
		r.Report(rec)
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) < 2 {
		t.Fatalf("recorded %d sleeps, want >= 2 (one per NACK)", len(slept))
	}
	for i := 0; i < 2; i++ {
		if slept[i] < 3*time.Second {
			t.Fatalf("sleep %d after hinted NACK was %v, want >= 3s", i, slept[i])
		}
	}
	for _, d := range slept[2:] {
		if d >= 3*time.Second {
			t.Fatalf("post-hint sleep %v still floored, hint not consumed", d)
		}
	}
	if st := r.Stats(); st.Nacks != 2 {
		t.Fatalf("nacks %d, want 2", st.Nacks)
	}
	if got := sink.snapshot(); len(got) != len(recs) {
		t.Fatalf("sink absorbed %d, want %d", len(got), len(recs))
	}
}

func TestReporterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with neither Addr nor Dial succeeded")
	}
}

// String labels scripted faults in subtest names and failures.
func (b fakeBehavior) String() string {
	switch b {
	case behaveNackBad:
		return "nack-bad"
	case behaveNackBusy:
		return "nack-busy"
	case behaveCutBeforeCommit:
		return "cut-before-commit"
	case behaveCutAfterCommit:
		return "cut-after-commit"
	default:
		return "ack"
	}
}
